//! Rollout storage and generalized advantage estimation.
//!
//! A scheduling round produces one transition per submitted query: the
//! observation at the decision point, the chosen action (query × parameter
//! configuration), its log-probability and value estimate under the behaviour
//! policy, the reward (negative elapsed virtual time until the next decision,
//! so that the episode return is the negative makespan), and — for IQ-PPO's
//! auxiliary task — the identity and ground-truth finish time of the earliest
//! concurrent query to finish.

use serde::{Deserialize, Serialize};

/// Auxiliary-task target attached to a transition: the earliest concurrent
/// query to finish after this decision point and its (normalised) remaining
/// time until completion.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AuxTarget {
    /// Index (within the observation's entity list) of the earliest query to
    /// finish among those running at this state.
    pub earliest_index: usize,
    /// Its ground-truth finish time, expressed in the same normalised units
    /// the auxiliary head predicts.
    pub finish_time: f32,
}

/// One stored decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transition<O> {
    /// Observation at the decision point.
    pub obs: O,
    /// Index of the chosen action in the flattened action space.
    pub action: usize,
    /// Log-probability of the action under the behaviour policy.
    pub log_prob: f32,
    /// Value estimate of the behaviour policy.
    pub value: f32,
    /// Reward obtained after the action.
    pub reward: f32,
    /// Whether the episode ended after this transition.
    pub done: bool,
    /// Full action distribution of the behaviour policy (for the KL /
    /// behaviour-cloning term of the auxiliary phases).
    pub action_probs: Vec<f32>,
    /// Auxiliary finish-time target, when one exists for this state.
    pub aux: Option<AuxTarget>,
}

/// Per-transition advantage and return computed by GAE.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Estimate {
    /// Advantage estimate Â_t.
    pub advantage: f32,
    /// Value target V̂^targ_t (advantage + value).
    pub value_target: f32,
}

/// A buffer of transitions collected under one behaviour policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RolloutBuffer<O> {
    transitions: Vec<Transition<O>>,
}

impl<O> Default for RolloutBuffer<O> {
    fn default() -> Self {
        Self {
            transitions: Vec::new(),
        }
    }
}

impl<O> RolloutBuffer<O> {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a transition.
    pub fn push(&mut self, transition: Transition<O>) {
        self.transitions.push(transition);
    }

    /// All stored transitions, in collection order.
    pub fn transitions(&self) -> &[Transition<O>] {
        &self.transitions
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Remove everything (called after each on-policy update).
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// Append all transitions of `other` (used by IQ-PPO, whose auxiliary
    /// phase trains on every log accumulated during the PPO phase).
    pub fn extend(&mut self, other: RolloutBuffer<O>) {
        self.transitions.extend(other.transitions);
    }

    /// Generalized advantage estimation over the stored (possibly multi-
    /// episode) trajectory. Episode boundaries are taken from `done` flags;
    /// the value after a terminal state is zero.
    pub fn gae(&self, gamma: f32, lambda: f32) -> Vec<Estimate> {
        let n = self.transitions.len();
        let mut estimates = vec![
            Estimate {
                advantage: 0.0,
                value_target: 0.0
            };
            n
        ];
        let mut next_advantage = 0.0f32;
        let mut next_value = 0.0f32;
        for i in (0..n).rev() {
            let t = &self.transitions[i];
            if t.done {
                next_advantage = 0.0;
                next_value = 0.0;
            }
            let delta = t.reward + gamma * next_value - t.value;
            let advantage = delta + gamma * lambda * next_advantage;
            estimates[i] = Estimate {
                advantage,
                value_target: advantage + t.value,
            };
            next_advantage = advantage;
            next_value = t.value;
        }
        estimates
    }

    /// GAE advantages normalised to zero mean and unit variance (the usual
    /// PPO stabilisation), paired with unnormalised value targets.
    pub fn normalized_gae(&self, gamma: f32, lambda: f32) -> Vec<Estimate> {
        let mut est = self.gae(gamma, lambda);
        if est.len() < 2 {
            return est;
        }
        let mean = est.iter().map(|e| e.advantage).sum::<f32>() / est.len() as f32;
        let var = est
            .iter()
            .map(|e| (e.advantage - mean).powi(2))
            .sum::<f32>()
            / est.len() as f32;
        let std = var.sqrt().max(1e-6);
        for e in &mut est {
            e.advantage = (e.advantage - mean) / std;
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(reward: f32, value: f32, done: bool) -> Transition<u32> {
        Transition {
            obs: 0,
            action: 0,
            log_prob: -1.0,
            value,
            reward,
            done,
            action_probs: vec![0.5, 0.5],
            aux: None,
        }
    }

    #[test]
    fn gae_matches_hand_computed_values() {
        // Two-step episode, gamma=1, lambda=1: advantages are the full-return
        // residuals.
        let mut buf = RolloutBuffer::new();
        buf.push(transition(-1.0, 0.5, false));
        buf.push(transition(-2.0, 0.25, true));
        let est = buf.gae(1.0, 1.0);
        // delta_1 = -2 - 0.25 = -2.25 ; A_1 = -2.25 ; target_1 = -2.0
        assert!((est[1].advantage + 2.25).abs() < 1e-6);
        assert!((est[1].value_target + 2.0).abs() < 1e-6);
        // delta_0 = -1 + 0.25 - 0.5 = -1.25 ; A_0 = -1.25 + (-2.25) = -3.5
        assert!((est[0].advantage + 3.5).abs() < 1e-6);
        assert!((est[0].value_target + 3.0).abs() < 1e-6);
    }

    #[test]
    fn gae_respects_episode_boundaries() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(-1.0, 0.0, true));
        buf.push(transition(-5.0, 0.0, true));
        let est = buf.gae(0.99, 0.95);
        // Episodes are independent: the first advantage must not see the second reward.
        assert!((est[0].advantage + 1.0).abs() < 1e-6);
        assert!((est[1].advantage + 5.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_advantages_have_zero_mean_unit_std() {
        let mut buf = RolloutBuffer::new();
        for i in 0..10 {
            buf.push(transition(-(i as f32), 0.0, i == 9));
        }
        let est = buf.normalized_gae(0.99, 0.95);
        let mean: f32 = est.iter().map(|e| e.advantage).sum::<f32>() / est.len() as f32;
        let var: f32 =
            est.iter().map(|e| e.advantage * e.advantage).sum::<f32>() / est.len() as f32;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn extend_and_clear() {
        let mut a = RolloutBuffer::new();
        a.push(transition(-1.0, 0.0, true));
        let mut b = RolloutBuffer::new();
        b.push(transition(-2.0, 0.0, true));
        b.push(transition(-3.0, 0.0, true));
        a.extend(b);
        assert_eq!(a.len(), 3);
        a.clear();
        assert!(a.is_empty());
    }
}
