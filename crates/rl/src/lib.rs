//! # bq-rl
//!
//! Reinforcement-learning algorithms for BQSched on the `bq-nn` substrate:
//!
//! * [`RolloutBuffer`] with generalized advantage estimation;
//! * [`PpoTrainer`] — clipped-surrogate PPO (the paper's backbone);
//! * [`PpgTrainer`] — phasic policy gradients (auxiliary value distillation),
//!   the ablation baseline;
//! * [`IqPpoTrainer`] — the paper's IQ-PPO: PPO plus an auxiliary phase that
//!   predicts the finish time of the earliest concurrent query from the
//!   shared state representation, with a behaviour-cloning KL term
//!   (Algorithm 1).
//!
//! The algorithms are model-agnostic: anything implementing [`ActorCritic`]
//! (the BQSched agent, the adapted LSched baseline, or the toy models used in
//! tests) can be trained.

#![warn(missing_docs)]

pub mod algo;
pub mod buffer;

pub use algo::{
    ActorCritic, AuxStats, IqPpoConfig, IqPpoTrainer, PpgTrainer, PpoConfig, PpoStats, PpoTrainer,
};
pub use buffer::{AuxTarget, Estimate, RolloutBuffer, Transition};
