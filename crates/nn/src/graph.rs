//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation of a forward pass as a node on a tape.
//! Calling [`Graph::backward`] on a scalar loss node walks the tape in reverse
//! and accumulates gradients; [`Graph::flush_grads`] then moves the gradients
//! of parameter leaves back into the owning [`ParamStore`].
//!
//! The op set is intentionally small: it is exactly what the BQSched networks
//! (QueryFormer-style plan encoder, multi-head attention state representation,
//! policy/value/auxiliary heads, PPO/PPG/IQ-PPO losses and the learned
//! incremental simulator) need, with nothing speculative.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Index of a node on the tape.
pub type NodeId = usize;

/// Operation recorded on the tape. Parents are stored as node indices.
#[derive(Debug, Clone)]
enum Op {
    /// Constant leaf; gradients are never propagated into it.
    Input,
    /// Learnable leaf; gradients are flushed back to the store.
    Param(#[allow(dead_code)] ParamId),
    MatMul(NodeId, NodeId),
    Transpose(NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    /// `[n, d] + [1, d]` broadcast (bias addition).
    AddRow(NodeId, NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId, #[allow(dead_code)] f32),
    /// Elementwise addition of a constant tensor (masking, shifting).
    AddConst(NodeId),
    /// Elementwise multiplication by a constant tensor.
    MulConst(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    Sigmoid(NodeId),
    Exp(NodeId),
    SoftmaxRows(NodeId),
    LogSoftmaxRows(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    /// `[n, d] -> [n, 1]` row sums.
    SumRows(NodeId),
    /// `[n, d] -> [1, d]` column means (mean pooling over rows).
    MeanPoolRows(NodeId),
    /// `[n, d] -> [1, d]` column sums (sum pooling over rows).
    SumPoolRows(NodeId),
    ConcatCols(NodeId, NodeId),
    ConcatRows(NodeId, NodeId),
    SliceRows(NodeId, usize),
    SliceCols(NodeId, usize),
    /// Row-major reshape (no data movement).
    Reshape(NodeId),
    SelectRows(NodeId, Vec<usize>),
    /// Row-wise normalisation `(x - mean) / sqrt(var + eps)`.
    RowNorm(NodeId, f32),
    Clamp(NodeId, f32, f32),
    MinElem(NodeId, NodeId),
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    op: Op,
    needs_grad: bool,
    /// Constant operand for [`Op::AddConst`] / [`Op::MulConst`].
    aux: Option<Tensor>,
}

/// A single forward/backward tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    param_nodes: Vec<(NodeId, ParamId)>,
    grads: Vec<Option<Tensor>>,
}

impl Graph {
    /// Create an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id].value
    }

    /// The gradient of a node after [`Graph::backward`], if it was reached.
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool, aux: Option<Tensor>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            value,
            op,
            needs_grad,
            aux,
        });
        id
    }

    fn needs(&self, id: NodeId) -> bool {
        self.nodes[id].needs_grad
    }

    // ----------------------------------------------------------------- leaves

    /// Insert a constant leaf (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input, false, None)
    }

    /// Insert a learnable leaf whose value is read from `store`.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        let node = self.push(store.value(id).clone(), Op::Param(id), true, None);
        self.param_nodes.push((node, id));
        node
    }

    // ------------------------------------------------------------ linear algebra

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.matmul(&self.nodes[b].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MatMul(a, b), ng, None)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.transpose();
        let ng = self.needs(a);
        self.push(v, Op::Transpose(a), ng, None)
    }

    /// Elementwise addition of same-shaped nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.add(&self.nodes[b].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Add(a, b), ng, None)
    }

    /// Elementwise subtraction of same-shaped nodes.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.sub(&self.nodes[b].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Sub(a, b), ng, None)
    }

    /// Elementwise product of same-shaped nodes.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.mul(&self.nodes[b].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Mul(a, b), ng, None)
    }

    /// Broadcast addition of a `1 x d` row (bias) to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let v = self.nodes[a]
            .value
            .add_row_broadcast(&self.nodes[bias].value);
        let ng = self.needs(a) || self.needs(bias);
        self.push(v, Op::AddRow(a, bias), ng, None)
    }

    /// Multiply every element by the scalar `s`.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.nodes[a].value.scale(s);
        let ng = self.needs(a);
        self.push(v, Op::Scale(a, s), ng, None)
    }

    /// Add the scalar `s` to every element.
    pub fn add_scalar(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.nodes[a].value.map(|x| x + s);
        let ng = self.needs(a);
        self.push(v, Op::AddScalar(a, s), ng, None)
    }

    /// Elementwise addition of a constant tensor (e.g. an action mask of
    /// `0 / -1e8` values); no gradient flows into the constant.
    pub fn add_const(&mut self, a: NodeId, c: &Tensor) -> NodeId {
        let v = self.nodes[a].value.add(c);
        let ng = self.needs(a);
        self.push(v, Op::AddConst(a), ng, Some(c.clone()))
    }

    /// Elementwise multiplication by a constant tensor (one-hot selectors,
    /// advantages, importance weights).
    pub fn mul_const(&mut self, a: NodeId, c: &Tensor) -> NodeId {
        let v = self.nodes[a].value.mul(c);
        let ng = self.needs(a);
        self.push(v, Op::MulConst(a), ng, Some(c.clone()))
    }

    // ------------------------------------------------------------ nonlinearities

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f32::tanh);
        let ng = self.needs(a);
        self.push(v, Op::Tanh(a), ng, None)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(v, Op::Relu(a), ng, None)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.needs(a);
        self.push(v, Op::Sigmoid(a), ng, None)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f32::exp);
        let ng = self.needs(a);
        self.push(v, Op::Exp(a), ng, None)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.softmax_rows();
        let ng = self.needs(a);
        self.push(v, Op::SoftmaxRows(a), ng, None)
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a].value;
        let mut v = x.clone();
        for r in 0..x.rows() {
            let row = x.row_slice(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&y| (y - m).exp()).sum::<f32>().ln();
            for c in 0..x.cols() {
                v.set(r, c, x.get(r, c) - lse);
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::LogSoftmaxRows(a), ng, None)
    }

    /// Clamp every element into `[lo, hi]`; gradients are zero outside.
    pub fn clamp(&mut self, a: NodeId, lo: f32, hi: f32) -> NodeId {
        let v = self.nodes[a].value.map(|x| x.clamp(lo, hi));
        let ng = self.needs(a);
        self.push(v, Op::Clamp(a, lo, hi), ng, None)
    }

    /// Elementwise minimum of two same-shaped nodes (PPO clipped surrogate).
    pub fn min_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.zip_map(&self.nodes[b].value, f32::min);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MinElem(a, b), ng, None)
    }

    // ------------------------------------------------------------ reductions

    /// Sum of all elements, as a `1 x 1` node.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a].value.sum());
        let ng = self.needs(a);
        self.push(v, Op::SumAll(a), ng, None)
    }

    /// Mean of all elements, as a `1 x 1` node.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a].value.mean());
        let ng = self.needs(a);
        self.push(v, Op::MeanAll(a), ng, None)
    }

    /// Row sums: `[n, d] -> [n, 1]`.
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a].value;
        let mut v = Tensor::zeros(x.rows(), 1);
        for r in 0..x.rows() {
            v.set(r, 0, x.row_slice(r).iter().sum());
        }
        let ng = self.needs(a);
        self.push(v, Op::SumRows(a), ng, None)
    }

    /// Column means over all rows: `[n, d] -> [1, d]`.
    pub fn mean_pool_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.mean_pool_rows();
        let ng = self.needs(a);
        self.push(v, Op::MeanPoolRows(a), ng, None)
    }

    /// Column sums over all rows: `[n, d] -> [1, d]` (cluster sum-pooling).
    pub fn sum_pool_rows(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a].value;
        let mut v = Tensor::zeros(1, x.cols());
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                v.set(0, c, v.get(0, c) + x.get(r, c));
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::SumPoolRows(a), ng, None)
    }

    // ------------------------------------------------------------ shape ops

    /// Concatenate along columns.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.concat_cols(&self.nodes[b].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::ConcatCols(a, b), ng, None)
    }

    /// Concatenate along rows.
    pub fn concat_rows(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.concat_rows(&self.nodes[b].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::ConcatRows(a, b), ng, None)
    }

    /// Slice a contiguous block of rows.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let v = self.nodes[a].value.slice_rows(start, len);
        let ng = self.needs(a);
        self.push(v, Op::SliceRows(a, start), ng, None)
    }

    /// Slice a contiguous block of columns.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let v = self.nodes[a].value.slice_cols(start, len);
        let ng = self.needs(a);
        self.push(v, Op::SliceCols(a, start), ng, None)
    }

    /// Row-major reshape to `rows x cols` (element count must match). Used to
    /// flatten per-query logits `[n, k]` into a single action row `[1, n*k]`.
    pub fn reshape(&mut self, a: NodeId, rows: usize, cols: usize) -> NodeId {
        let x = &self.nodes[a].value;
        assert_eq!(x.len(), rows * cols, "reshape element count mismatch");
        let v = Tensor::from_vec(rows, cols, x.data().to_vec());
        let ng = self.needs(a);
        self.push(v, Op::Reshape(a), ng, None)
    }

    /// Gather rows by index (indices may repeat).
    pub fn select_rows(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let v = self.nodes[a].value.select_rows(indices);
        let ng = self.needs(a);
        self.push(v, Op::SelectRows(a, indices.to_vec()), ng, None)
    }

    /// Row-wise normalisation: `(x - mean) / sqrt(var + eps)` per row.
    pub fn row_norm(&mut self, a: NodeId, eps: f32) -> NodeId {
        let v = self.nodes[a].value.row_norm(eps);
        let ng = self.needs(a);
        self.push(v, Op::RowNorm(a, eps), ng, None)
    }

    // ------------------------------------------------------------ loss helpers

    /// Mean-squared-error loss against a constant target.
    pub fn mse_loss(&mut self, pred: NodeId, target: &Tensor) -> NodeId {
        let t = self.input(target.clone());
        let diff = self.sub(pred, t);
        let sq = self.mul(diff, diff);
        self.mean_all(sq)
    }

    /// Softmax cross-entropy against constant one-hot targets, averaged over rows.
    pub fn cross_entropy_loss(&mut self, logits: NodeId, one_hot: &Tensor) -> NodeId {
        let n = self.nodes[logits].value.rows().max(1) as f32;
        let ls = self.log_softmax_rows(logits);
        let picked = self.mul_const(ls, one_hot);
        let total = self.sum_all(picked);
        self.scale(total, -1.0 / n)
    }

    /// Mean entropy of the row-wise softmax distribution of `logits`.
    pub fn softmax_entropy(&mut self, logits: NodeId) -> NodeId {
        let n = self.nodes[logits].value.rows().max(1) as f32;
        let p = self.softmax_rows(logits);
        let lp = self.log_softmax_rows(logits);
        let plp = self.mul(p, lp);
        let total = self.sum_all(plp);
        self.scale(total, -1.0 / n)
    }

    /// Mean KL divergence `KL(p_old || softmax(logits))` against constant old
    /// probabilities (one row per state). Used by the IQ-PPO behaviour-cloning
    /// term.
    pub fn kl_divergence(&mut self, logits: NodeId, p_old: &Tensor) -> NodeId {
        let n = self.nodes[logits].value.rows().max(1) as f32;
        // Constant part: (1/n) * sum p_old * log p_old.
        let const_term: f32 = p_old
            .data()
            .iter()
            .map(|&p| if p > 1e-12 { p * p.ln() } else { 0.0 })
            .sum::<f32>()
            / n;
        let lp = self.log_softmax_rows(logits);
        let cross = self.mul_const(lp, p_old);
        let total = self.sum_all(cross);
        let neg_cross = self.scale(total, -1.0 / n);
        self.add_scalar(neg_cross, const_term)
    }

    // ------------------------------------------------------------ backward

    /// Run reverse-mode differentiation starting from the scalar `loss` node.
    ///
    /// # Panics
    /// Panics if the loss node is not `1 x 1`.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.nodes[loss].value.shape(),
            (1, 1),
            "backward() must start from a scalar (1x1) loss node"
        );
        self.grads = vec![None; self.nodes.len()];
        self.grads[loss] = Some(Tensor::scalar(1.0));

        for id in (0..self.nodes.len()).rev() {
            if !self.nodes[id].needs_grad {
                continue;
            }
            let Some(gy) = self.grads[id].clone() else {
                continue;
            };
            let op = self.nodes[id].op.clone();
            match op {
                Op::Input | Op::Param(_) => {}
                Op::MatMul(a, b) => {
                    if self.needs(a) {
                        let bt = self.nodes[b].value.transpose();
                        let da = gy.matmul(&bt);
                        self.acc(a, da);
                    }
                    if self.needs(b) {
                        let at = self.nodes[a].value.transpose();
                        let db = at.matmul(&gy);
                        self.acc(b, db);
                    }
                }
                Op::Transpose(a) => {
                    if self.needs(a) {
                        self.acc(a, gy.transpose());
                    }
                }
                Op::Add(a, b) => {
                    if self.needs(a) {
                        self.acc(a, gy.clone());
                    }
                    if self.needs(b) {
                        self.acc(b, gy);
                    }
                }
                Op::Sub(a, b) => {
                    if self.needs(a) {
                        self.acc(a, gy.clone());
                    }
                    if self.needs(b) {
                        self.acc(b, gy.scale(-1.0));
                    }
                }
                Op::Mul(a, b) => {
                    if self.needs(a) {
                        let da = gy.mul(&self.nodes[b].value);
                        self.acc(a, da);
                    }
                    if self.needs(b) {
                        let db = gy.mul(&self.nodes[a].value);
                        self.acc(b, db);
                    }
                }
                Op::AddRow(a, bias) => {
                    if self.needs(a) {
                        self.acc(a, gy.clone());
                    }
                    if self.needs(bias) {
                        let mut db = Tensor::zeros(1, gy.cols());
                        for r in 0..gy.rows() {
                            for c in 0..gy.cols() {
                                db.set(0, c, db.get(0, c) + gy.get(r, c));
                            }
                        }
                        self.acc(bias, db);
                    }
                }
                Op::Scale(a, s) => {
                    if self.needs(a) {
                        self.acc(a, gy.scale(s));
                    }
                }
                Op::AddScalar(a, _) | Op::AddConst(a) => {
                    if self.needs(a) {
                        self.acc(a, gy);
                    }
                }
                Op::MulConst(a) => {
                    if self.needs(a) {
                        let c = self.nodes[id].aux.as_ref().expect("MulConst aux");
                        self.acc(a, gy.mul(c));
                    }
                }
                Op::Tanh(a) => {
                    if self.needs(a) {
                        let y = &self.nodes[id].value;
                        let da = gy.zip_map(y, |g, t| g * (1.0 - t * t));
                        self.acc(a, da);
                    }
                }
                Op::Relu(a) => {
                    if self.needs(a) {
                        let x = &self.nodes[a].value;
                        let da = gy.zip_map(x, |g, xv| if xv > 0.0 { g } else { 0.0 });
                        self.acc(a, da);
                    }
                }
                Op::Sigmoid(a) => {
                    if self.needs(a) {
                        let y = &self.nodes[id].value;
                        let da = gy.zip_map(y, |g, s| g * s * (1.0 - s));
                        self.acc(a, da);
                    }
                }
                Op::Exp(a) => {
                    if self.needs(a) {
                        let y = &self.nodes[id].value;
                        let da = gy.mul(y);
                        self.acc(a, da);
                    }
                }
                Op::SoftmaxRows(a) => {
                    if self.needs(a) {
                        let y = &self.nodes[id].value;
                        let mut da = Tensor::zeros(y.rows(), y.cols());
                        for r in 0..y.rows() {
                            let dot: f32 = (0..y.cols()).map(|c| gy.get(r, c) * y.get(r, c)).sum();
                            for c in 0..y.cols() {
                                da.set(r, c, y.get(r, c) * (gy.get(r, c) - dot));
                            }
                        }
                        self.acc(a, da);
                    }
                }
                Op::LogSoftmaxRows(a) => {
                    if self.needs(a) {
                        let y = &self.nodes[id].value; // log-probabilities
                        let mut da = Tensor::zeros(y.rows(), y.cols());
                        for r in 0..y.rows() {
                            let gsum: f32 = (0..y.cols()).map(|c| gy.get(r, c)).sum();
                            for c in 0..y.cols() {
                                let p = y.get(r, c).exp();
                                da.set(r, c, gy.get(r, c) - p * gsum);
                            }
                        }
                        self.acc(a, da);
                    }
                }
                Op::SumAll(a) => {
                    if self.needs(a) {
                        let shape = self.nodes[a].value.shape();
                        let da = Tensor::full(shape.0, shape.1, gy.item());
                        self.acc(a, da);
                    }
                }
                Op::MeanAll(a) => {
                    if self.needs(a) {
                        let shape = self.nodes[a].value.shape();
                        let n = (shape.0 * shape.1).max(1) as f32;
                        let da = Tensor::full(shape.0, shape.1, gy.item() / n);
                        self.acc(a, da);
                    }
                }
                Op::SumRows(a) => {
                    if self.needs(a) {
                        let shape = self.nodes[a].value.shape();
                        let mut da = Tensor::zeros(shape.0, shape.1);
                        for r in 0..shape.0 {
                            for c in 0..shape.1 {
                                da.set(r, c, gy.get(r, 0));
                            }
                        }
                        self.acc(a, da);
                    }
                }
                Op::MeanPoolRows(a) => {
                    if self.needs(a) {
                        let shape = self.nodes[a].value.shape();
                        let n = shape.0.max(1) as f32;
                        let mut da = Tensor::zeros(shape.0, shape.1);
                        for r in 0..shape.0 {
                            for c in 0..shape.1 {
                                da.set(r, c, gy.get(0, c) / n);
                            }
                        }
                        self.acc(a, da);
                    }
                }
                Op::SumPoolRows(a) => {
                    if self.needs(a) {
                        let shape = self.nodes[a].value.shape();
                        let mut da = Tensor::zeros(shape.0, shape.1);
                        for r in 0..shape.0 {
                            for c in 0..shape.1 {
                                da.set(r, c, gy.get(0, c));
                            }
                        }
                        self.acc(a, da);
                    }
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.nodes[a].value.cols();
                    let bc = self.nodes[b].value.cols();
                    if self.needs(a) {
                        self.acc(a, gy.slice_cols(0, ac));
                    }
                    if self.needs(b) {
                        self.acc(b, gy.slice_cols(ac, bc));
                    }
                }
                Op::ConcatRows(a, b) => {
                    let ar = self.nodes[a].value.rows();
                    let br = self.nodes[b].value.rows();
                    if self.needs(a) {
                        self.acc(a, gy.slice_rows(0, ar));
                    }
                    if self.needs(b) {
                        self.acc(b, gy.slice_rows(ar, br));
                    }
                }
                Op::SliceRows(a, start) => {
                    if self.needs(a) {
                        let shape = self.nodes[a].value.shape();
                        let mut da = Tensor::zeros(shape.0, shape.1);
                        for r in 0..gy.rows() {
                            for c in 0..gy.cols() {
                                da.set(start + r, c, gy.get(r, c));
                            }
                        }
                        self.acc(a, da);
                    }
                }
                Op::Reshape(a) => {
                    if self.needs(a) {
                        let shape = self.nodes[a].value.shape();
                        let da = Tensor::from_vec(shape.0, shape.1, gy.data().to_vec());
                        self.acc(a, da);
                    }
                }
                Op::SliceCols(a, start) => {
                    if self.needs(a) {
                        let shape = self.nodes[a].value.shape();
                        let mut da = Tensor::zeros(shape.0, shape.1);
                        for r in 0..gy.rows() {
                            for c in 0..gy.cols() {
                                da.set(r, start + c, gy.get(r, c));
                            }
                        }
                        self.acc(a, da);
                    }
                }
                Op::SelectRows(a, ref indices) => {
                    if self.needs(a) {
                        let shape = self.nodes[a].value.shape();
                        let mut da = Tensor::zeros(shape.0, shape.1);
                        for (r, &src) in indices.iter().enumerate() {
                            for c in 0..gy.cols() {
                                da.set(src, c, da.get(src, c) + gy.get(r, c));
                            }
                        }
                        self.acc(a, da);
                    }
                }
                Op::RowNorm(a, eps) => {
                    if self.needs(a) {
                        let x = &self.nodes[a].value;
                        let y = &self.nodes[id].value;
                        let d = x.cols() as f32;
                        let mut da = Tensor::zeros(x.rows(), x.cols());
                        for r in 0..x.rows() {
                            let row = x.row_slice(r);
                            let mean = row.iter().sum::<f32>() / d;
                            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d;
                            let std = (var + eps).sqrt();
                            let g_mean: f32 = (0..x.cols()).map(|c| gy.get(r, c)).sum::<f32>() / d;
                            let gy_dot_y: f32 = (0..x.cols())
                                .map(|c| gy.get(r, c) * y.get(r, c))
                                .sum::<f32>()
                                / d;
                            for c in 0..x.cols() {
                                let v = (gy.get(r, c) - g_mean - y.get(r, c) * gy_dot_y) / std;
                                da.set(r, c, v);
                            }
                        }
                        self.acc(a, da);
                    }
                }
                Op::Clamp(a, lo, hi) => {
                    if self.needs(a) {
                        let x = &self.nodes[a].value;
                        let da = gy.zip_map(x, |g, xv| if xv > lo && xv < hi { g } else { 0.0 });
                        self.acc(a, da);
                    }
                }
                Op::MinElem(a, b) => {
                    let av = self.nodes[a].value.clone();
                    let bv = self.nodes[b].value.clone();
                    if self.needs(a) {
                        let da = Tensor::from_vec(
                            gy.rows(),
                            gy.cols(),
                            gy.data()
                                .iter()
                                .zip(av.data().iter().zip(bv.data().iter()))
                                .map(|(&g, (&x, &y))| if x <= y { g } else { 0.0 })
                                .collect(),
                        );
                        self.acc(a, da);
                    }
                    if self.needs(b) {
                        let db = Tensor::from_vec(
                            gy.rows(),
                            gy.cols(),
                            gy.data()
                                .iter()
                                .zip(av.data().iter().zip(bv.data().iter()))
                                .map(|(&g, (&x, &y))| if x > y { g } else { 0.0 })
                                .collect(),
                        );
                        self.acc(b, db);
                    }
                }
            }
        }
    }

    fn acc(&mut self, id: NodeId, delta: Tensor) {
        match &mut self.grads[id] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Move the gradients of every parameter leaf back into the store.
    ///
    /// Must be called after [`Graph::backward`]; gradients accumulate in the
    /// store until [`ParamStore::zero_grads`] is called.
    pub fn flush_grads(&self, store: &mut ParamStore) {
        for &(node, pid) in &self.param_nodes {
            if let Some(g) = self.grads.get(node).and_then(|g| g.as_ref()) {
                store.accumulate_grad(pid, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerically estimate d(loss)/d(param[i]) via central differences and
    /// compare against the autodiff gradient.
    fn check_gradients(
        build: impl Fn(&mut Graph, &ParamStore) -> NodeId,
        store: &mut ParamStore,
        tol: f32,
    ) {
        // Analytic gradients.
        store.zero_grads();
        let mut g = Graph::new();
        let loss = build(&mut g, store);
        g.backward(loss);
        g.flush_grads(store);
        let analytic: Vec<(crate::params::ParamId, Tensor)> =
            store.iter().map(|(id, p)| (id, p.grad.clone())).collect();

        // Numeric gradients.
        let eps = 1e-3_f32;
        for (pid, ana) in &analytic {
            let n = store.value(*pid).len();
            for i in 0..n {
                let orig = store.value(*pid).data()[i];
                store.get_mut(*pid).value.data_mut()[i] = orig + eps;
                let mut g1 = Graph::new();
                let l1 = build(&mut g1, store);
                let f1 = g1.value(l1).item();
                store.get_mut(*pid).value.data_mut()[i] = orig - eps;
                let mut g2 = Graph::new();
                let l2 = build(&mut g2, store);
                let f2 = g2.value(l2).item();
                store.get_mut(*pid).value.data_mut()[i] = orig;
                let numeric = (f1 - f2) / (2.0 * eps);
                let a = ana.data()[i];
                assert!(
                    (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "gradient mismatch at param {:?}[{}]: analytic {} vs numeric {}",
                    pid,
                    i,
                    a,
                    numeric
                );
            }
        }
    }

    #[test]
    fn matmul_linear_gradients() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let w = store.add_xavier("w", 3, 2, &mut rng);
        let b = store.add_zeros("b", 1, 2);
        let x = Tensor::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.1 - 0.5).collect());
        let target = Tensor::from_vec(4, 2, (0..8).map(|i| (i as f32) * 0.05).collect());

        check_gradients(
            |g, s| {
                let xi = g.input(x.clone());
                let wi = g.param(s, w);
                let bi = g.param(s, b);
                let h = g.matmul(xi, wi);
                let h = g.add_row(h, bi);
                let y = g.tanh(h);
                g.mse_loss(y, &target)
            },
            &mut store,
            2e-2,
        );
    }

    #[test]
    fn softmax_cross_entropy_gradients() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let w = store.add_xavier("w", 4, 3, &mut rng);
        let x = Tensor::from_vec(5, 4, (0..20).map(|i| ((i * 13 % 7) as f32) * 0.1).collect());
        let one_hot = Tensor::one_hot_rows(3, &[0, 2, 1, 1, 0]);

        check_gradients(
            |g, s| {
                let xi = g.input(x.clone());
                let wi = g.param(s, w);
                let logits = g.matmul(xi, wi);
                g.cross_entropy_loss(logits, &one_hot)
            },
            &mut store,
            2e-2,
        );
    }

    #[test]
    fn attention_style_gradients() {
        // A miniature single-head attention block exercises matmul, transpose,
        // scale, softmax and concatenation together.
        let mut rng = StdRng::seed_from_u64(99);
        let mut store = ParamStore::new();
        let wq = store.add_xavier("wq", 4, 4, &mut rng);
        let wk = store.add_xavier("wk", 4, 4, &mut rng);
        let wv = store.add_xavier("wv", 4, 4, &mut rng);
        let x = Tensor::from_vec(
            3,
            4,
            (0..12).map(|i| ((i % 5) as f32) * 0.2 - 0.4).collect(),
        );
        let target = Tensor::zeros(3, 4);

        check_gradients(
            |g, s| {
                let xi = g.input(x.clone());
                let q = {
                    let w = g.param(s, wq);
                    g.matmul(xi, w)
                };
                let k = {
                    let w = g.param(s, wk);
                    g.matmul(xi, w)
                };
                let v = {
                    let w = g.param(s, wv);
                    g.matmul(xi, w)
                };
                let kt = g.transpose(k);
                let scores = g.matmul(q, kt);
                let scores = g.scale(scores, 0.5);
                let attn = g.softmax_rows(scores);
                let out = g.matmul(attn, v);
                g.mse_loss(out, &target)
            },
            &mut store,
            3e-2,
        );
    }

    #[test]
    fn row_norm_and_pool_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w = store.add_xavier("w", 3, 3, &mut rng);
        let x = Tensor::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.3 - 1.0).collect());
        let target = Tensor::zeros(1, 3);

        check_gradients(
            |g, s| {
                let xi = g.input(x.clone());
                let wi = g.param(s, w);
                let h = g.matmul(xi, wi);
                let n = g.row_norm(h, 1e-5);
                let pooled = g.mean_pool_rows(n);
                g.mse_loss(pooled, &target)
            },
            &mut store,
            3e-2,
        );
    }

    #[test]
    fn ppo_surrogate_gradients() {
        // exp / clamp / min / mul_const pipeline as used in the PPO loss.
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w = store.add_xavier("w", 3, 4, &mut rng);
        let x = Tensor::from_vec(
            6,
            3,
            (0..18).map(|i| ((i % 4) as f32) * 0.25 - 0.3).collect(),
        );
        let actions = Tensor::one_hot_rows(4, &[0, 1, 2, 3, 1, 0]);
        let old_logp = Tensor::col(&[-1.2, -1.4, -1.3, -1.5, -1.1, -1.6]);
        let adv = Tensor::col(&[0.5, -0.2, 1.0, -1.0, 0.3, 0.8]);

        check_gradients(
            |g, s| {
                let xi = g.input(x.clone());
                let wi = g.param(s, w);
                let logits = g.matmul(xi, wi);
                let logp = g.log_softmax_rows(logits);
                let picked = g.mul_const(logp, &actions);
                let logp_a = g.sum_rows(picked);
                let neg_old = old_logp.scale(-1.0);
                let delta = g.add_const(logp_a, &neg_old);
                let ratio = g.exp(delta);
                let surr1 = g.mul_const(ratio, &adv);
                let clipped = g.clamp(ratio, 0.8, 1.2);
                let surr2 = g.mul_const(clipped, &adv);
                let surr = g.min_elem(surr1, surr2);
                let m = g.mean_all(surr);
                g.scale(m, -1.0)
            },
            &mut store,
            3e-2,
        );
    }

    #[test]
    fn select_rows_and_concat_gradients() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let w = store.add_xavier("w", 2, 3, &mut rng);
        let x = Tensor::from_vec(4, 2, vec![0.1, 0.4, -0.2, 0.5, 0.3, -0.1, 0.2, 0.2]);
        let target = Tensor::zeros(2, 6);

        check_gradients(
            |g, s| {
                let xi = g.input(x.clone());
                let wi = g.param(s, w);
                let h = g.matmul(xi, wi);
                let sel = g.select_rows(h, &[1, 3]);
                let other = g.select_rows(h, &[0, 1]);
                let cat = g.concat_cols(sel, other);
                g.mse_loss(cat, &target)
            },
            &mut store,
            2e-2,
        );
    }

    #[test]
    fn reshape_gradients_flow_back() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut store = ParamStore::new();
        let w = store.add_xavier("w", 2, 4, &mut rng);
        let x = Tensor::from_vec(3, 2, vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6]);
        let target = Tensor::zeros(1, 12);
        check_gradients(
            |g, s| {
                let xi = g.input(x.clone());
                let wi = g.param(s, w);
                let h = g.matmul(xi, wi);
                let flat = g.reshape(h, 1, 12);
                g.mse_loss(flat, &target)
            },
            &mut store,
            2e-2,
        );
    }

    #[test]
    fn kl_divergence_is_zero_for_matching_distribution() {
        let mut g = Graph::new();
        let logits = Tensor::from_vec(2, 3, vec![0.2, 1.0, -0.5, 0.0, 0.0, 0.0]);
        let p_old = logits.softmax_rows();
        let l = g.input(logits);
        let kl = g.kl_divergence(l, &p_old);
        assert!(g.value(kl).item().abs() < 1e-5);
    }

    #[test]
    fn kl_divergence_positive_for_different_distribution() {
        let mut g = Graph::new();
        let logits = Tensor::from_vec(1, 3, vec![3.0, 0.0, -3.0]);
        let p_old = Tensor::row(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
        let l = g.input(logits);
        let kl = g.kl_divergence(l, &p_old);
        assert!(g.value(kl).item() > 0.1);
    }

    #[test]
    fn entropy_maximised_by_uniform_logits() {
        let mut g = Graph::new();
        let uniform = g.input(Tensor::row(&[0.0, 0.0, 0.0, 0.0]));
        let peaked = g.input(Tensor::row(&[10.0, 0.0, 0.0, 0.0]));
        let e_u = g.softmax_entropy(uniform);
        let e_p = g.softmax_entropy(peaked);
        let eu = g.value(e_u).item();
        let ep = g.value(e_p).item();
        assert!(eu > ep);
        assert!((eu - (4.0_f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn masked_logits_get_zero_probability() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::row(&[1.0, 2.0, 3.0]));
        let mask = Tensor::row(&[0.0, -1e8, 0.0]);
        let masked = g.add_const(logits, &mask);
        let p = g.softmax_rows(masked);
        assert!(g.value(p).get(0, 1) < 1e-6);
        let sum: f32 = g.value(p).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g2 = Graph::new();
            let y = g2.input(Tensor::zeros(2, 2));
            g2.backward(y);
        }));
        assert!(result.is_err());
        // The original graph is still usable.
        assert_eq!(g.value(x).shape(), (2, 2));
    }

    #[test]
    fn grads_accumulate_across_flushes() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row(&[2.0]));
        for _ in 0..2 {
            let mut g = Graph::new();
            let wi = g.param(&store, w);
            let sq = g.mul(wi, wi);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.flush_grads(&mut store);
        }
        // d(w^2)/dw = 2w = 4, accumulated twice = 8.
        assert!((store.grad(w).data()[0] - 8.0).abs() < 1e-5);
    }
}
