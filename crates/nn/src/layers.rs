//! Neural network layers used by the BQSched models.
//!
//! All layers hold only [`ParamId`] handles; the actual values live in a
//! [`ParamStore`]. A layer's `forward` method records its computation on a
//! [`Graph`] and returns the output node.

use crate::graph::{Graph, NodeId};
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation functions supported by [`Linear`] and [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no activation).
    None,
    /// Hyperbolic tangent — the default in the BQSched paper's `(σ · Linear)^m` blocks.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    fn apply(self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::None => x,
            Activation::Tanh => g.tanh(x),
            Activation::Relu => g.relu(x),
            Activation::Sigmoid => g.sigmoid(x),
        }
    }

    /// Tape-free counterpart of [`Activation::apply`]. The closures are the
    /// same expressions the graph ops use, so both paths produce bitwise
    /// identical values.
    fn apply_tensor(self, x: Tensor) -> Tensor {
        match self {
            Activation::None => x,
            Activation::Tanh => x.map(f32::tanh),
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Sigmoid => x.map(|v| 1.0 / (1.0 + (-v).exp())),
        }
    }
}

/// A fully-connected layer `y = act(x W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
}

impl Linear {
    /// Create a new linear layer with Xavier-initialised weights.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let weight = store.add_xavier(format!("{name}.weight"), in_dim, out_dim, rng);
        let bias = store.add_zeros(format!("{name}.bias"), 1, out_dim);
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
            activation,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Record the layer's computation for input node `x` (`[n, in_dim]`).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        assert_eq!(
            g.value(x).cols(),
            self.in_dim,
            "Linear layer expected {} input columns, got {}",
            self.in_dim,
            g.value(x).cols()
        );
        let w = g.param(store, self.weight);
        let b = g.param(store, self.bias);
        let h = g.matmul(x, w);
        let h = g.add_row(h, b);
        self.activation.apply(g, h)
    }

    /// Tape-free forward pass reading weights by reference from the store.
    ///
    /// Bitwise identical to [`Linear::forward`]: both paths run the same
    /// [`Tensor`] arithmetic, this one just skips recording graph nodes (and
    /// the per-use parameter clone that `Graph::param` makes).
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        debug_assert_eq!(x.cols(), self.in_dim, "Linear infer width mismatch");
        let h = x.matmul(store.value(self.weight));
        let h = h.add_row_broadcast(store.value(self.bias));
        self.activation.apply_tensor(h)
    }
}

/// A multilayer perceptron: a stack of [`Linear`] layers.
///
/// The paper composes most of its heads as `(σ · Linear)^m`; this struct is
/// that composition with a configurable activation on hidden layers and an
/// optional different activation on the output layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[64, 32, 1]` produces
    /// two layers `64 -> 32 -> 1`. Hidden layers use `hidden_act`; the final
    /// layer uses `out_act`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        sizes: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least an input and an output size"
        );
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i + 2 == sizes.len() {
                out_act
            } else {
                hidden_act
            };
            layers.push(Linear::new(
                store,
                &format!("{name}.{i}"),
                sizes[i],
                sizes[i + 1],
                act,
                rng,
            ));
        }
        Self { layers }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(Linear::in_dim).unwrap_or(0)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(Linear::out_dim).unwrap_or(0)
    }

    /// Record the forward pass.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(g, store, h);
        }
        h
    }

    /// Tape-free forward pass; see [`Linear::infer`].
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut h = self.layers[0].infer(store, x);
        for layer in &self.layers[1..] {
            h = layer.infer(store, &h);
        }
        h
    }
}

/// Row-wise layer normalisation with learnable scale and shift.
///
/// The paper applies batch normalisation after every attention sub-layer; at
/// batch-of-queries granularity (a single scheduling state is one "batch"),
/// layer normalisation is the standard equivalent that does not require
/// running statistics, so we use it here and note the substitution in
/// DESIGN.md.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Create a layer norm over vectors of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(
            format!("{name}.gamma"),
            crate::tensor::Tensor::full(1, dim, 1.0),
        );
        let beta = store.add_zeros(format!("{name}.beta"), 1, dim);
        Self {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// Normalised width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Record the forward pass for `x` of shape `[n, dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        assert_eq!(g.value(x).cols(), self.dim, "LayerNorm width mismatch");
        let normed = g.row_norm(x, self.eps);
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        // Broadcast gamma across rows by building a same-shaped constant is
        // avoided: scale row-wise via mul with a broadcast matmul trick.
        // gamma is [1, d]; we expand it by multiplying an all-ones column.
        let n = g.value(x).rows();
        let ones = g.input(crate::tensor::Tensor::full(n, 1, 1.0));
        let gamma_full = g.matmul(ones, gamma);
        let scaled = g.mul(normed, gamma_full);
        g.add_row(scaled, beta)
    }

    /// Tape-free forward pass, replicating [`LayerNorm::forward`] exactly —
    /// including the `ones · gamma` broadcast construction, so the scaled
    /// values round identically.
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        debug_assert_eq!(x.cols(), self.dim, "LayerNorm infer width mismatch");
        let normed = x.row_norm(self.eps);
        let ones = Tensor::full(x.rows(), 1, 1.0);
        let gamma_full = ones.matmul(store.value(self.gamma));
        let scaled = normed.mul(&gamma_full);
        scaled.add_row_broadcast(store.value(self.beta))
    }
}

/// Precomputed fused projection weights for the tape-free attention path.
///
/// The per-head `[dim, head_dim]` Q/K/V weights are column-concatenated into
/// three `[dim, dim]` matrices so one matmul per projection replaces `3·heads`
/// small ones. Because [`Tensor::matmul`] accumulates each output column over
/// `k` in the same ascending order regardless of which other columns share the
/// right-hand matrix, slicing the fused product back into head blocks yields
/// bitwise the same values as the per-head matmuls.
///
/// The cache is derived purely from parameter values; holders compare
/// [`ParamStore::version`] to decide when to rebuild it.
#[derive(Debug, Clone)]
pub struct AttentionInferCache {
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
}

/// Multi-head self-attention over a set of row vectors.
///
/// This is the core of both the QueryFormer-style plan encoder (with a tree
/// bias mask) and the batch-query state representation (with the super query
/// token). The attention operates on `[n, dim]` inputs and returns `[n, dim]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    wq: Vec<ParamId>,
    wk: Vec<ParamId>,
    wv: Vec<ParamId>,
    wo: ParamId,
    bo: ParamId,
    dim: usize,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Create a multi-head attention block. `dim` must be divisible by `heads`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim {dim} must be divisible by heads {heads}"
        );
        let head_dim = dim / heads;
        let mut wq = Vec::with_capacity(heads);
        let mut wk = Vec::with_capacity(heads);
        let mut wv = Vec::with_capacity(heads);
        for h in 0..heads {
            wq.push(store.add_xavier(format!("{name}.wq{h}"), dim, head_dim, rng));
            wk.push(store.add_xavier(format!("{name}.wk{h}"), dim, head_dim, rng));
            wv.push(store.add_xavier(format!("{name}.wv{h}"), dim, head_dim, rng));
        }
        let wo = store.add_xavier(format!("{name}.wo"), dim, dim, rng);
        let bo = store.add_zeros(format!("{name}.bo"), 1, dim);
        Self {
            wq,
            wk,
            wv,
            wo,
            bo,
            dim,
            heads,
            head_dim,
        }
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Record the forward pass.
    ///
    /// `bias` is an optional additive `[n, n]` attention bias (e.g. the tree
    /// bias of the plan encoder or a padding mask); masked entries should be a
    /// large negative number.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        bias: Option<&crate::tensor::Tensor>,
    ) -> NodeId {
        let n = g.value(x).rows();
        assert_eq!(
            g.value(x).cols(),
            self.dim,
            "attention input width mismatch"
        );
        if let Some(b) = bias {
            assert_eq!(b.shape(), (n, n), "attention bias must be [n, n]");
        }
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut head_outputs: Option<NodeId> = None;
        for h in 0..self.heads {
            let wq = g.param(store, self.wq[h]);
            let wk = g.param(store, self.wk[h]);
            let wv = g.param(store, self.wv[h]);
            let q = g.matmul(x, wq);
            let k = g.matmul(x, wk);
            let v = g.matmul(x, wv);
            let kt = g.transpose(k);
            let scores = g.matmul(q, kt);
            let mut scores = g.scale(scores, scale);
            if let Some(b) = bias {
                scores = g.add_const(scores, b);
            }
            let attn = g.softmax_rows(scores);
            let out = g.matmul(attn, v);
            head_outputs = Some(match head_outputs {
                None => out,
                Some(prev) => g.concat_cols(prev, out),
            });
        }
        let concat = head_outputs.expect("at least one attention head");
        let wo = g.param(store, self.wo);
        let bo = g.param(store, self.bo);
        let projected = g.matmul(concat, wo);
        g.add_row(projected, bo)
    }

    /// Fuse the per-head Q/K/V projection weights for [`Self::infer`].
    pub fn build_infer_cache(&self, store: &ParamStore) -> AttentionInferCache {
        let fuse = |ids: &[ParamId]| {
            let mut fused = store.value(ids[0]).clone();
            for id in &ids[1..] {
                fused = fused.concat_cols(store.value(*id));
            }
            fused
        };
        AttentionInferCache {
            wq: fuse(&self.wq),
            wk: fuse(&self.wk),
            wv: fuse(&self.wv),
        }
    }

    /// Tape-free forward pass using fused Q/K/V projections.
    ///
    /// Bitwise identical to [`Self::forward`]: the fused matmul computes each
    /// head's projection columns with the same per-column accumulation order,
    /// and everything after the slice reuses the exact per-head arithmetic.
    pub fn infer(
        &self,
        store: &ParamStore,
        x: &Tensor,
        bias: Option<&Tensor>,
        cache: &AttentionInferCache,
    ) -> Tensor {
        debug_assert_eq!(x.cols(), self.dim, "attention infer width mismatch");
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let q_all = x.matmul(&cache.wq);
        let k_all = x.matmul(&cache.wk);
        let v_all = x.matmul(&cache.wv);
        let mut head_outputs: Option<Tensor> = None;
        for h in 0..self.heads {
            let lo = h * self.head_dim;
            let q = q_all.slice_cols(lo, self.head_dim);
            let k = k_all.slice_cols(lo, self.head_dim);
            let v = v_all.slice_cols(lo, self.head_dim);
            let kt = k.transpose();
            let mut scores = q.matmul(&kt).scale(scale);
            if let Some(b) = bias {
                scores = scores.add(b);
            }
            let attn = scores.softmax_rows();
            let out = attn.matmul(&v);
            head_outputs = Some(match head_outputs {
                None => out,
                Some(prev) => prev.concat_cols(&out),
            });
        }
        let concat = head_outputs.expect("at least one attention head");
        let projected = concat.matmul(store.value(self.wo));
        projected.add_row_broadcast(store.value(self.bo))
    }
}

/// A Transformer-style encoder block: attention + feed-forward, each with a
/// residual connection and layer normalisation, matching Eq. (x̂_i / x_i^(ℓ))
/// in §III-A of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttentionBlock {
    attention: MultiHeadAttention,
    norm1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    norm2: LayerNorm,
}

impl AttentionBlock {
    /// Create one encoder block with model width `dim`, `heads` attention
    /// heads and a feed-forward hidden width `ff_dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            attention: MultiHeadAttention::new(store, &format!("{name}.mha"), dim, heads, rng),
            norm1: LayerNorm::new(store, &format!("{name}.norm1"), dim),
            ff1: Linear::new(
                store,
                &format!("{name}.ff1"),
                dim,
                ff_dim,
                Activation::Relu,
                rng,
            ),
            ff2: Linear::new(
                store,
                &format!("{name}.ff2"),
                ff_dim,
                dim,
                Activation::None,
                rng,
            ),
            norm2: LayerNorm::new(store, &format!("{name}.norm2"), dim),
        }
    }

    /// Record the forward pass of the block.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        bias: Option<&crate::tensor::Tensor>,
    ) -> NodeId {
        let attn = self.attention.forward(g, store, x, bias);
        let residual = g.add(x, attn);
        let x1 = self.norm1.forward(g, store, residual);
        let h = self.ff1.forward(g, store, x1);
        let h = self.ff2.forward(g, store, h);
        let residual2 = g.add(x1, h);
        self.norm2.forward(g, store, residual2)
    }

    /// Fuse this block's attention projections for [`Self::infer`].
    pub fn build_infer_cache(&self, store: &ParamStore) -> AttentionInferCache {
        self.attention.build_infer_cache(store)
    }

    /// Tape-free forward pass of the block; see [`MultiHeadAttention::infer`].
    pub fn infer(
        &self,
        store: &ParamStore,
        x: &Tensor,
        bias: Option<&Tensor>,
        cache: &AttentionInferCache,
    ) -> Tensor {
        let attn = self.attention.infer(store, x, bias, cache);
        let residual = x.add(&attn);
        let x1 = self.norm1.infer(store, &residual);
        let h = self.ff1.infer(store, &x1);
        let h = self.ff2.infer(store, &h);
        let residual2 = x1.add(&h);
        self.norm2.infer(store, &residual2)
    }

    /// Model dimensionality handled by this block.
    pub fn dim(&self) -> usize {
        self.attention.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 5, 3, Activation::Tanh, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(7, 5));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (7, 3));
        // Tanh keeps outputs in (-1, 1).
        assert!(g.value(y).data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn mlp_stacks_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "m",
            &[8, 16, 4, 1],
            Activation::Relu,
            Activation::None,
            &mut rng,
        );
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 1);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(3, 8));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (3, 1));
    }

    #[test]
    fn layer_norm_normalises_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(
            2,
            4,
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
        ));
        let y = ln.forward(&mut g, &store, x);
        let v = g.value(y);
        for r in 0..2 {
            let mean: f32 = v.row_slice(r).iter().sum::<f32>() / 4.0;
            let var: f32 = v
                .row_slice(r)
                .iter()
                .map(|&a| (a - mean) * (a - mean))
                .sum::<f32>()
                / 4.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn attention_output_shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "mha", 8, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(
            5,
            8,
            (0..40).map(|i| (i as f32) * 0.01).collect(),
        ));
        let y = mha.forward(&mut g, &store, x, None);
        assert_eq!(g.value(y).shape(), (5, 8));
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn attention_respects_bias_mask() {
        // With a mask that blocks attention to every position except self,
        // each row's output should depend only on its own value row.
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, "mha", 4, 1, &mut rng);

        let base = Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32) * 0.1).collect());
        let mut other = base.clone();
        // Change row 2 only.
        for c in 0..4 {
            other.set(2, c, 9.0);
        }
        let mut mask = Tensor::full(3, 3, -1e8);
        for i in 0..3 {
            mask.set(i, i, 0.0);
        }

        let mut g1 = Graph::new();
        let x1 = g1.input(base);
        let y1 = mha.forward(&mut g1, &store, x1, Some(&mask));

        let mut g2 = Graph::new();
        let x2 = g2.input(other);
        let y2 = mha.forward(&mut g2, &store, x2, Some(&mask));

        // Rows 0 and 1 unchanged, row 2 changed.
        for c in 0..4 {
            assert!((g1.value(y1).get(0, c) - g2.value(y2).get(0, c)).abs() < 1e-5);
            assert!((g1.value(y1).get(1, c) - g2.value(y2).get(1, c)).abs() < 1e-5);
        }
        let row2_diff: f32 = (0..4)
            .map(|c| (g1.value(y1).get(2, c) - g2.value(y2).get(2, c)).abs())
            .sum();
        assert!(row2_diff > 1e-3);
    }

    #[test]
    fn attention_block_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let block = AttentionBlock::new(&mut store, "blk", 8, 2, 16, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(
            6,
            8,
            (0..48).map(|i| ((i % 7) as f32) * 0.1).collect(),
        ));
        let y = block.forward(&mut g, &store, x, None);
        assert_eq!(g.value(y).shape(), (6, 8));
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn infer_paths_match_graph_bitwise() {
        // The tape-free infer path (fused QKV, no graph nodes) must produce
        // bit-for-bit the same floats as the recorded forward pass for every
        // layer kind, across activations and head counts.
        let mut rng = StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let block = AttentionBlock::new(&mut store, "blk", 8, 4, 16, &mut rng);
        let mlp = Mlp::new(
            &mut store,
            "m",
            &[8, 16, 3],
            Activation::Tanh,
            Activation::Sigmoid,
            &mut rng,
        );
        let x = Tensor::from_vec(
            6,
            8,
            (0..48).map(|i| ((i % 11) as f32) * 0.13 - 0.5).collect(),
        );
        let mut bias = Tensor::zeros(6, 6);
        bias.set(0, 5, -1e8);
        bias.set(3, 1, -1e8);

        for b in [None, Some(&bias)] {
            let mut g = Graph::new();
            let xi = g.input(x.clone());
            let y_graph = block.forward(&mut g, &store, xi, b);
            let cache = block.build_infer_cache(&store);
            let y_infer = block.infer(&store, &x, b, &cache);
            assert_eq!(g.value(y_graph).shape(), y_infer.shape());
            for (a, c) in g.value(y_graph).data().iter().zip(y_infer.data()) {
                assert_eq!(a.to_bits(), c.to_bits(), "attention block drifted");
            }
        }

        let mut g = Graph::new();
        let xi = g.input(x.clone());
        let y_graph = mlp.forward(&mut g, &store, xi);
        let y_infer = mlp.infer(&store, &x);
        for (a, c) in g.value(y_graph).data().iter().zip(y_infer.data()) {
            assert_eq!(a.to_bits(), c.to_bits(), "mlp drifted");
        }
    }

    #[test]
    fn param_store_version_tracks_value_mutation() {
        let mut store = ParamStore::new();
        let v0 = store.version();
        let id = store.add("w", Tensor::row(&[1.0]));
        assert!(store.version() > v0);
        let v1 = store.version();
        store.accumulate_grad(id, &Tensor::row(&[1.0]));
        store.zero_grads();
        store.clip_grad_norm(1.0);
        assert_eq!(store.version(), v1, "grad-only ops must not bump version");
        store.get_mut(id).value.set(0, 0, 2.0);
        assert!(store.version() > v1);
    }

    #[test]
    fn mlp_can_learn_a_simple_function() {
        // Train y = 2*x0 - x1 with an MLP; loss should drop substantially.
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "m",
            &[2, 16, 1],
            Activation::Tanh,
            Activation::None,
            &mut rng,
        );
        let mut adam = Adam::new(0.01);

        let xs: Vec<Vec<f32>> = (0..32)
            .map(|i| vec![((i % 8) as f32) / 8.0 - 0.5, ((i / 8) as f32) / 4.0 - 0.5])
            .collect();
        let ys: Vec<Vec<f32>> = xs.iter().map(|x| vec![2.0 * x[0] - x[1]]).collect();
        let x = Tensor::from_rows(&xs);
        let y = Tensor::from_rows(&ys);

        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            store.zero_grads();
            let mut g = Graph::new();
            let xi = g.input(x.clone());
            let pred = mlp.forward(&mut g, &store, xi);
            let loss = g.mse_loss(pred, &y);
            last = g.value(loss).item();
            if first.is_none() {
                first = Some(last);
            }
            g.backward(loss);
            g.flush_grads(&mut store);
            adam.step(&mut store);
        }
        assert!(
            last < first.unwrap() * 0.1,
            "loss did not drop: {first:?} -> {last}"
        );
        assert!(last < 0.01, "final loss too high: {last}");
    }
}
