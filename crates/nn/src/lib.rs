//! # bq-nn
//!
//! A minimal, dependency-light neural network substrate for the BQSched
//! reproduction: dense 2-D tensors, tape-based reverse-mode automatic
//! differentiation, the layers the paper's models need (linear/MLP stacks,
//! multi-head attention with additive biases, layer normalisation) and the
//! Adam/SGD optimizers.
//!
//! The original BQSched implementation uses PyTorch; this crate replaces it
//! with a CPU-only implementation sized for the paper's models (tens of
//! thousands of parameters, inputs of at most a few hundred rows), so that
//! the whole scheduler — plan encoder, attention state representation,
//! IQ-PPO, gain predictor and the learned incremental simulator — runs
//! without any native ML dependency.
//!
//! ## Quick example
//!
//! ```
//! use bq_nn::{Activation, Adam, Graph, Mlp, ParamStore, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let mlp = Mlp::new(&mut store, "net", &[2, 8, 1], Activation::Tanh, Activation::None, &mut rng);
//! let mut adam = Adam::new(0.01);
//!
//! let x = Tensor::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
//! let y = Tensor::from_rows(&[vec![1.0], vec![-1.0]]);
//! for _ in 0..10 {
//!     store.zero_grads();
//!     let mut g = Graph::new();
//!     let xi = g.input(x.clone());
//!     let pred = mlp.forward(&mut g, &store, xi);
//!     let loss = g.mse_loss(pred, &y);
//!     g.backward(loss);
//!     g.flush_grads(&mut store);
//!     adam.step(&mut store);
//! }
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tensor;

pub use graph::{Graph, NodeId};
pub use layers::{
    Activation, AttentionBlock, AttentionInferCache, LayerNorm, Linear, Mlp, MultiHeadAttention,
};
pub use optim::{Adam, Sgd};
pub use params::{Param, ParamId, ParamStore};
pub use tensor::Tensor;
