//! First-order optimizers operating on a [`ParamStore`].

use crate::params::ParamStore;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Adam optimizer (Kingma & Ba) — the default optimizer for every learned
/// component of BQSched (policy/value/auxiliary networks, the gain predictor
/// and the learned incremental simulator).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// L2 weight decay (0 disables it).
    pub weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Create an Adam optimizer with the given learning rate and default
    /// moment coefficients (0.9 / 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Builder-style weight decay setter.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        while self.m.len() < store.len() {
            let idx = self.m.len();
            let p = store.get(crate::params::ParamId(idx));
            self.m.push(Tensor::zeros(p.value.rows(), p.value.cols()));
            self.v.push(Tensor::zeros(p.value.rows(), p.value.cols()));
        }
    }

    /// Apply one update using the gradients currently accumulated in `store`,
    /// then zero the gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, p) in store.iter_mut() {
            let idx = id.index();
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            for i in 0..p.value.len() {
                let mut g = p.grad.data()[i];
                if self.weight_decay > 0.0 {
                    g += self.weight_decay * p.value.data()[i];
                }
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }
}

/// Plain stochastic gradient descent, used in a few unit tests and available
/// for ablation experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Create an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Builder-style momentum setter.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Apply one update using accumulated gradients, then zero them.
    pub fn step(&mut self, store: &mut ParamStore) {
        while self.velocity.len() < store.len() {
            let idx = self.velocity.len();
            let p = store.get(crate::params::ParamId(idx));
            self.velocity
                .push(Tensor::zeros(p.value.rows(), p.value.cols()));
        }
        for (id, p) in store.iter_mut() {
            let vel = &mut self.velocity[id.index()];
            for i in 0..p.value.len() {
                let g = p.grad.data()[i];
                let v = self.momentum * vel.data()[i] + g;
                vel.data_mut()[i] = v;
                p.value.data_mut()[i] -= self.lr * v;
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_loss(store: &ParamStore, id: crate::params::ParamId) -> (Graph, usize) {
        // loss = mean((w - 3)^2)
        let mut g = Graph::new();
        let w = g.param(store, id);
        let target = Tensor::full(1, 4, 3.0);
        let loss = g.mse_loss(w, &target);
        (g, loss)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::row(&[0.0, 10.0, -5.0, 1.0]));
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            store.zero_grads();
            let (mut g, loss) = quadratic_loss(&store, id);
            g.backward(loss);
            g.flush_grads(&mut store);
            adam.step(&mut store);
        }
        for &v in store.value(id).data() {
            assert!((v - 3.0).abs() < 0.05, "value {v} did not converge to 3");
        }
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::row(&[0.0, 6.0, -2.0, 3.0]));
        let mut sgd = Sgd::new(0.5).with_momentum(0.5);
        for _ in 0..200 {
            store.zero_grads();
            let (mut g, loss) = quadratic_loss(&store, id);
            g.backward(loss);
            g.flush_grads(&mut store);
            sgd.step(&mut store);
        }
        for &v in store.value(id).data() {
            assert!((v - 3.0).abs() < 0.05, "value {v} did not converge to 3");
        }
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::row(&[1.0]));
        store.accumulate_grad(id, &Tensor::row(&[2.0]));
        let mut adam = Adam::new(0.01);
        adam.step(&mut store);
        assert_eq!(store.grad(id).data(), &[0.0]);
    }

    #[test]
    fn weight_decay_shrinks_unused_weights() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::row(&[5.0]));
        let mut adam = Adam::new(0.1).with_weight_decay(0.1);
        // Gradient is zero; only weight decay acts.
        for _ in 0..100 {
            adam.step(&mut store);
        }
        assert!(store.value(id).data()[0].abs() < 5.0);
    }
}
