//! Dense 2-D tensor used throughout the BQSched learning stack.
//!
//! All learned components of BQSched (plan encoder, attention state
//! representation, policy/value/auxiliary heads, the learned incremental
//! simulator) operate on small matrices — at most a few hundred rows
//! (queries) by a few dozen columns (embedding dimensions) — so a simple
//! row-major `Vec<f32>` backing store is both sufficient and cache friendly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major 2-D tensor of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Create a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a tensor filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a tensor from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Create a `1 x n` row vector.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Create an `n x 1` column vector.
    pub fn col(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Create a `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Stack row vectors (each of identical length) into an `n x d` matrix.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have identical length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// One-hot row vector of length `dim` with a 1.0 at `index`.
    pub fn one_hot(dim: usize, index: usize) -> Self {
        assert!(index < dim, "one-hot index {index} out of range {dim}");
        let mut t = Self::zeros(1, dim);
        t.data[index] = 1.0;
        t
    }

    /// One-hot matrix: row `i` has a 1.0 at `indices[i]`.
    pub fn one_hot_rows(dim: usize, indices: &[usize]) -> Self {
        let mut t = Self::zeros(indices.len(), dim);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < dim, "one-hot index {idx} out of range {dim}");
            t.data[i * dim + idx] = 1.0;
        }
        t
    }

    /// Identity matrix of size `n x n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The single value of a `1 x 1` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.len(),
            1,
            "item() requires a 1x1 tensor, got {}x{}",
            self.rows,
            self.cols
        );
        self.data[0]
    }

    /// A copy of row `r` as a `Vec`.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix multiplication `self @ other`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        // i-k-j loop order for row-major locality.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for j in 0..other.cols {
                    crow[j] += a * orow[j];
                }
            }
        }
        out
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise binary map into a new tensor.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise unary map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Scalar multiplication.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// In-place elementwise addition (`self += other`).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaled addition (`self += s * other`), the AXPY primitive.
    pub fn add_scaled(&mut self, other: &Tensor, s: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (returns `f32::NEG_INFINITY` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in a `1 x n` or `n x 1` tensor.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Frobenius (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Broadcast addition of a `1 x d` row (bias) to every row.
    ///
    /// This is the single definition of the bias-broadcast arithmetic: both
    /// the autodiff tape ([`crate::Graph::add_row`]) and the tape-free
    /// inference path call it, so the two can never drift apart bitwise.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows, 1, "add_row bias must have a single row");
        assert_eq!(bias.cols, self.cols, "add_row bias width mismatch");
        let mut v = self.clone();
        for r in 0..v.rows {
            for c in 0..v.cols {
                let x = v.get(r, c) + bias.get(0, c);
                v.set(r, c, x);
            }
        }
        v
    }

    /// Row-wise normalisation `(x - mean) / sqrt(var + eps)`, shared between
    /// the tape ([`crate::Graph::row_norm`]) and tape-free inference.
    pub fn row_norm(&self, eps: f32) -> Tensor {
        let d = self.cols as f32;
        let mut v = self.clone();
        for r in 0..self.rows {
            let row = self.row_slice(r);
            let mean = row.iter().sum::<f32>() / d;
            let var = row.iter().map(|&y| (y - mean) * (y - mean)).sum::<f32>() / d;
            let std = (var + eps).sqrt();
            for c in 0..self.cols {
                v.set(r, c, (self.get(r, c) - mean) / std);
            }
        }
        v
    }

    /// Column means over all rows: `[n, d] -> [1, d]`, shared between the
    /// tape ([`crate::Graph::mean_pool_rows`]) and tape-free inference.
    pub fn mean_pool_rows(&self) -> Tensor {
        let n = self.rows.max(1) as f32;
        let mut v = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                v.set(0, c, v.get(0, c) + self.get(r, c) / n);
            }
        }
        v
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Concatenate two tensors along columns (`[n, a] ++ [n, b] -> [n, a+b]`).
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row_slice(r));
            data.extend_from_slice(other.row_slice(r));
        }
        Tensor {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Concatenate two tensors along rows (`[a, d] ++ [b, d] -> [a+b, d]`).
    pub fn concat_rows(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "concat_rows column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Tensor {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Extract a contiguous block of rows.
    pub fn slice_rows(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.rows, "slice_rows out of range");
        let data = self.data[start * self.cols..(start + len) * self.cols].to_vec();
        Tensor {
            rows: len,
            cols: self.cols,
            data,
        }
    }

    /// Extract a contiguous block of columns.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.cols, "slice_cols out of range");
        let mut data = Vec::with_capacity(self.rows * len);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols + start..r * self.cols + start + len]);
        }
        Tensor {
            rows: self.rows,
            cols: len,
            data,
        }
    }

    /// Gather the given rows into a new tensor (rows may repeat).
    pub fn select_rows(&self, indices: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(
                i < self.rows,
                "select_rows index {i} out of range {}",
                self.rows
            );
            data.extend_from_slice(self.row_slice(i));
        }
        Tensor {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(3, 4);
        assert_eq!(t.shape(), (3, 4));
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Softmax is monotone in the logits.
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let a = Tensor::row(&[1000.0, 1000.0, -1000.0]);
        let s = a.softmax_rows();
        assert!(s.all_finite());
        assert!((s.get(0, 0) - 0.5).abs() < 1e-4);
        assert!(s.get(0, 2) < 1e-6);
    }

    #[test]
    fn concat_and_slice_are_inverse() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 3, vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 5));
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);

        let d = a.concat_rows(&a);
        assert_eq!(d.shape(), (4, 2));
        assert_eq!(d.slice_rows(2, 2), a);
    }

    #[test]
    fn select_rows_gathers() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.select_rows(&[2, 0, 2]);
        assert_eq!(s.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn one_hot_rows_matches_indices() {
        let t = Tensor::one_hot_rows(4, &[1, 3]);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.get(1, 3), 1.0);
        assert_eq!(t.sum(), 2.0);
    }

    #[test]
    fn argmax_and_max() {
        let t = Tensor::row(&[0.5, 3.0, -1.0, 2.0]);
        assert_eq!(t.argmax(), 1);
        assert_eq!(t.max(), 3.0);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::row(&[1.0, 2.0]);
        let b = Tensor::row(&[10.0, 20.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&s).unwrap();
        assert_eq!(back, t);
    }
}
