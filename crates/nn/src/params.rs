//! Parameter storage shared by all learnable modules.
//!
//! Parameters live outside the computation graph in a [`ParamStore`], keyed by
//! [`ParamId`]. A forward pass copies parameter values into graph leaves; the
//! backward pass accumulates gradients back into the store, where an optimizer
//! ([`crate::optim`]) consumes them. This keeps the tape free of any borrow of
//! the store, so a single store can serve many graphs per training iteration
//! (policy phase, auxiliary phase, simulator updates, ...).

use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize, Value};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index of the parameter in its store.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A single learnable parameter with its accumulated gradient.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Human-readable name, used for debugging and checkpoint inspection.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.rows(), value.cols());
        Self {
            name: name.into(),
            value,
            grad,
        }
    }
}

/// Container for every learnable parameter of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
    /// Monotonic counter bumped on every mutable access to parameter values.
    /// Inference-side caches of derived weights (e.g. fused attention
    /// projections) compare it to decide whether they are stale. Not part of
    /// checkpoints: a freshly deserialized store restarts at zero, and caches
    /// are rebuilt against whatever store instance they are first used with.
    version: u64,
}

// Manual (de)serialization keeps `version` out of checkpoints, so the on-disk
// format is unchanged from the former derive (a map with a `params` entry).
impl Serialize for ParamStore {
    fn to_value(&self) -> Value {
        Value::Map(vec![("params".to_string(), self.params.to_value())])
    }
}

impl Deserialize for ParamStore {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("ParamStore: expected a map"))?;
        Ok(Self {
            params: Deserialize::from_value(Value::map_get(m, "params"))?,
            version: 0,
        })
    }
}

impl ParamStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Monotonic version of the parameter values: any call that could have
    /// mutated a value (registration, `get_mut`, `iter_mut`,
    /// `copy_values_from`) bumps it. Caches derived from parameter values
    /// are valid exactly as long as the version they were built at matches.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Register a parameter with an explicit initial value.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.params.len());
        self.params.push(Param::new(name, value));
        self.version += 1;
        id
    }

    /// Register a parameter initialised with Xavier/Glorot-uniform values,
    /// the default for the linear and attention layers in BQSched.
    pub fn add_xavier(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut impl Rng,
    ) -> ParamId {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        self.add(name, Tensor::from_vec(rows, cols, data))
    }

    /// Register a zero-initialised parameter (used for biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::zeros(rows, cols))
    }

    /// Number of registered parameters (tensors, not scalar elements).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar learnable values.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Immutable access to a parameter.
    pub fn get(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Mutable access to a parameter.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Param {
        self.version += 1;
        &mut self.params[id.0]
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Add `delta` into the gradient accumulator of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.params[id.0].grad.add_assign(delta);
    }

    /// Reset all gradient accumulators to zero.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill(0.0);
        }
    }

    /// Iterate over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Iterate mutably over all parameters.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Param)> {
        self.version += 1;
        self.params
            .iter_mut()
            .enumerate()
            .map(|(i, p)| (ParamId(i), p))
    }

    /// Global L2 norm of all gradients, used for gradient clipping.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale every gradient so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &mut self.params {
                for g in p.grad.data_mut() {
                    *g *= scale;
                }
            }
        }
    }

    /// Copy all parameter values from another store with identical layout.
    ///
    /// Used to snapshot the "old" policy before a PPO update and to load
    /// checkpoints saved during simulator pre-training.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        self.version += 1;
        assert_eq!(
            self.params.len(),
            other.params.len(),
            "param store layout mismatch"
        );
        for (dst, src) in self.params.iter_mut().zip(other.params.iter()) {
            assert_eq!(
                dst.value.shape(),
                src.value.shape(),
                "param shape mismatch for {}",
                dst.name
            );
            dst.value = src.value.clone();
        }
    }

    /// Serialize the parameter values to a JSON string (a lightweight checkpoint).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("param store serialization cannot fail")
    }

    /// Restore a store from [`ParamStore::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::row(&[1.0, 2.0]));
        assert_eq!(store.value(id).data(), &[1.0, 2.0]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 2);
    }

    #[test]
    fn xavier_values_in_range() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let id = store.add_xavier("w", 8, 4, &mut rng);
        let limit = (6.0_f32 / 12.0).sqrt();
        assert!(store.value(id).data().iter().all(|v| v.abs() <= limit));
        // Not all zeros.
        assert!(store.value(id).norm() > 0.0);
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut store = ParamStore::new();
        let id = store.add_zeros("b", 1, 3);
        store.accumulate_grad(id, &Tensor::row(&[1.0, 2.0, 3.0]));
        store.accumulate_grad(id, &Tensor::row(&[1.0, 1.0, 1.0]));
        assert_eq!(store.grad(id).data(), &[2.0, 3.0, 4.0]);
        store.zero_grads();
        assert_eq!(store.grad(id).data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn grad_clipping_respects_norm() {
        let mut store = ParamStore::new();
        let id = store.add_zeros("w", 1, 2);
        store.accumulate_grad(id, &Tensor::row(&[3.0, 4.0]));
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
        // Direction preserved.
        let g = store.grad(id);
        assert!((g.data()[1] / g.data()[0] - 4.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn clipping_leaves_small_grads_untouched() {
        let mut store = ParamStore::new();
        let id = store.add_zeros("w", 1, 2);
        store.accumulate_grad(id, &Tensor::row(&[0.1, 0.1]));
        let before = store.grad(id).clone();
        store.clip_grad_norm(10.0);
        assert_eq!(store.grad(id), &before);
    }

    #[test]
    fn copy_values_from_other_store() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = ParamStore::new();
        let mut b = ParamStore::new();
        let ia = a.add_xavier("w", 2, 2, &mut rng);
        let ib = b.add_xavier("w", 2, 2, &mut rng);
        assert_ne!(a.value(ia), b.value(ib));
        b.copy_values_from(&a);
        assert_eq!(a.value(ia), b.value(ib));
    }

    #[test]
    fn json_checkpoint_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        store.add_xavier("w1", 3, 3, &mut rng);
        store.add_zeros("b1", 1, 3);
        let json = store.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        assert_eq!(restored.len(), store.len());
        for (id, p) in store.iter() {
            assert_eq!(restored.value(id), &p.value);
        }
    }
}
