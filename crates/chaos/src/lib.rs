//! # bq-chaos
//!
//! Deterministic fault injection for the scheduling stack: replayable fault
//! schedules, chaos decorators for the wire transport and for executor
//! backends, and the glue that lets a session *recover* from the injected
//! faults — so degraded-mode behaviour is testable, replayable and gateable
//! exactly like healthy behaviour.
//!
//! The paper's premise is a non-intrusive scheduler driving a black-box
//! DBMS; real deployments of that shape lose connections, suffer partial
//! writes, and watch executor shards stall or die. This crate makes those
//! failures first-class *inputs*: every chaos episode is a pure function of
//! `(workload, profile, seed, fault schedule)`, and the schedule itself a
//! pure function of `(profile, seed)` — see [`FaultSchedule::generate`].
//!
//! * [`schedule`] — [`FaultSpec`], [`ChaosProfile`] and [`FaultSchedule`]:
//!   the seeded, replayable fault plan;
//! * [`transport`] — [`ChaosTransport`]: outage windows, a mid-frame
//!   truncation and congestion windows over any
//!   [`bq_wire::WireTransport`];
//! * [`backend`] — [`ChaosBackend`]: bounded shard stalls and permanent
//!   shard deaths over any [`bq_core::ExecutorBackend`] with a shard
//!   topology.
//!
//! # Recovery composition
//!
//! Transport faults are absorbed by `WireBackend::with_recovery` (bounded
//! seeded retransmission; the sequence prefix plus the server's cached
//! response replay keep execution at-most-once). Shard faults are absorbed
//! at the session level: [`bq_core::RecoveryPolicy`] resubmits lost queries
//! after a seeded backoff and [`bq_core::FaultAwareRouter`] routes
//! placements away from down shards, reintegrating recovered ones. Fault
//! and recovery events land in the episode log
//! ([`bq_core::EpisodeLog::faults`]) and feed the degraded-mode metrics
//! ([`bq_core::degraded_evaluation`]).
//!
//! # Determinism contract
//!
//! Under [`FaultSchedule::empty`] both decorators are **byte-identical
//! passthroughs** through the whole session stack (pinned by proptests and
//! the conformance suite); under any fixed nonzero schedule an episode
//! replays byte-identically, faults included.
//!
//! ```
//! use bq_chaos::{ChaosBackend, FaultSchedule, FaultSpec};
//! use bq_core::{FaultAwareRouter, FifoScheduler, LeastLoadedRouter, RecoveryPolicy,
//!               ScheduleSession};
//! use bq_dbms::{DbmsProfile, ShardedEngine};
//! use bq_plan::{generate, Benchmark, WorkloadSpec};
//!
//! let workload = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
//! let schedule = FaultSchedule::from_events(vec![
//!     FaultSpec::ShardDeath { shard: 1, at: 0.5 },
//! ]);
//! let sharded = ShardedEngine::new(DbmsProfile::dbms_x(), &workload, 0, 2);
//! let mut backend = ChaosBackend::new(sharded, &schedule);
//! let mut router = FaultAwareRouter::new(LeastLoadedRouter);
//! let log = ScheduleSession::builder(&workload)
//!     .router(&mut router)
//!     .recovery(RecoveryPolicy::bounded())
//!     .build(&mut backend)
//!     .run(&mut FifoScheduler::new());
//! assert_eq!(log.len(), workload.len()); // every query completed anyway
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod schedule;
pub mod transport;

pub use backend::ChaosBackend;
pub use schedule::{ChaosProfile, FaultSchedule, FaultSpec};
pub use transport::ChaosTransport;

#[cfg(test)]
mod tests {
    use super::*;
    use bq_core::{
        degraded_evaluation, FaultAwareRouter, FifoScheduler, LeastLoadedRouter, RecoveryPolicy,
        ScheduleSession,
    };
    use bq_dbms::{DbmsProfile, ExecutionEngine, ShardedEngine};
    use bq_plan::{generate, Benchmark, Workload, WorkloadSpec};
    use bq_wire::{InMemoryDuplex, WireBackend, WireServer};

    fn tpch() -> Workload {
        generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1))
    }

    #[test]
    fn empty_schedule_backend_is_byte_identical_through_the_session() {
        let w = tpch();
        let profile = DbmsProfile::dbms_x();
        for seed in [0u64, 4] {
            let mut bare = ShardedEngine::new(profile.clone(), &w, seed, 2);
            let base = ScheduleSession::builder(&w)
                .dbms(profile.kind)
                .round(seed)
                .build(&mut bare)
                .run(&mut FifoScheduler::new());
            let mut chaotic = ChaosBackend::new(
                ShardedEngine::new(profile.clone(), &w, seed, 2),
                &FaultSchedule::empty(),
            );
            let quiet = ScheduleSession::builder(&w)
                .dbms(profile.kind)
                .round(seed)
                .build(&mut chaotic)
                .run(&mut FifoScheduler::new());
            assert_eq!(base.to_json(), quiet.to_json(), "seed {seed}");
        }
    }

    #[test]
    fn empty_schedule_transport_is_byte_identical_through_the_session() {
        let w = tpch();
        let profile = DbmsProfile::dbms_x();
        let mut bare = ExecutionEngine::new(profile.clone(), &w, 0);
        let base = ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .build(&mut bare)
            .run(&mut FifoScheduler::new());
        let transport = ChaosTransport::lossless(&FaultSchedule::empty(), 0);
        let server = WireServer::new(ExecutionEngine::new(profile.clone(), &w, 0));
        let mut wired = WireBackend::connect(server, transport).expect("clean handshake");
        let quiet = ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .build(&mut wired)
            .run(&mut FifoScheduler::new());
        assert_eq!(base.to_json(), quiet.to_json());
    }

    #[test]
    fn a_shard_death_episode_recovers_and_replays_identically() {
        let w = tpch();
        let profile = DbmsProfile::dbms_x();
        let schedule = FaultSchedule::from_events(vec![
            FaultSpec::ShardStall {
                shard: 0,
                at: 0.2,
                resume_at: 0.4,
            },
            FaultSpec::ShardDeath { shard: 1, at: 0.5 },
        ]);
        let run = || {
            let mut backend =
                ChaosBackend::new(ShardedEngine::new(profile.clone(), &w, 0, 2), &schedule);
            let mut router = FaultAwareRouter::new(LeastLoadedRouter);
            ScheduleSession::builder(&w)
                .dbms(profile.kind)
                .router(&mut router)
                .recovery(RecoveryPolicy::bounded())
                .build(&mut backend)
                .run(&mut FifoScheduler::new())
        };
        let log = run();
        // Every query completed despite the dead shard.
        assert_eq!(log.len(), w.len());
        assert!(log.lost_queries() >= 1, "the death must cost something");
        assert_eq!(
            log.recovered_submissions(),
            log.lost_queries(),
            "every lost query was resubmitted"
        );
        assert_eq!(log.fault_count("shard_died"), 1);
        assert_eq!(log.fault_count("shard_stalled"), 1);
        assert_eq!(log.fault_count("shard_resumed"), 1);
        // The degraded episode is strictly slower than the healthy one.
        let mut healthy_backend = ShardedEngine::new(profile.clone(), &w, 0, 2);
        let mut healthy_router = LeastLoadedRouter;
        let healthy = ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .router(&mut healthy_router)
            .build(&mut healthy_backend)
            .run(&mut FifoScheduler::new());
        let degraded = degraded_evaluation(&log);
        assert!(
            degraded.makespan > healthy.makespan(),
            "losing a shard cannot speed the episode up: {} vs {}",
            degraded.makespan,
            healthy.makespan()
        );
        assert_eq!(degraded.lost_queries, log.lost_queries());
        // Byte-identical replay, faults included.
        assert_eq!(log.to_json(), run().to_json());
    }

    #[test]
    fn stalled_completions_deliver_rewritten_to_the_thaw_instant() {
        let w = tpch();
        let profile = DbmsProfile::dbms_x();
        // Find the healthy first-completion instant, then freeze its shard
        // across it.
        let mut probe = ShardedEngine::new(profile.clone(), &w, 0, 2);
        let healthy = ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .build(&mut probe)
            .run(&mut FifoScheduler::new());
        let first = healthy
            .records
            .iter()
            .map(|r| r.finished_at)
            .fold(f64::INFINITY, f64::min);
        let thaw = first + 1.0;
        let schedule = FaultSchedule::from_events(vec![FaultSpec::ShardStall {
            shard: 0,
            at: first / 2.0,
            resume_at: thaw,
        }]);
        let mut backend =
            ChaosBackend::new(ShardedEngine::new(profile.clone(), &w, 0, 2), &schedule);
        let log = ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .recovery(RecoveryPolicy::bounded())
            .build(&mut backend)
            .run(&mut FifoScheduler::new());
        assert_eq!(log.len(), w.len());
        // No shard-0 completion lands inside the freeze window.
        for r in &log.records {
            let on_stalled_shard = r.connection < 18;
            if on_stalled_shard {
                assert!(
                    r.finished_at < first / 2.0 - 1e-9 || r.finished_at >= thaw - 1e-9,
                    "completion at {} landed inside the freeze window",
                    r.finished_at
                );
            }
        }
        assert_eq!(log.fault_count("shard_stalled"), 1);
        assert_eq!(log.fault_count("shard_resumed"), 1);
        assert_eq!(log.lost_queries(), 0, "a stall loses nothing");
    }

    /// Build the regression scenario for an *engine-level* advance stall
    /// underneath the chaos decorator: shard 0's advance budget is forced to
    /// zero (it stalls on the first integration), while the fault schedule
    /// stalls shard 1 at the chaos layer. The decorator must never mask the
    /// engine diagnostic — the merge loop used to re-advance the broken
    /// shard with a fresh budget on every poll, spinning instead of failing.
    fn engine_stall_under_chaos(w: &Workload) -> ChaosBackend<ShardedEngine> {
        let profile = DbmsProfile::dbms_x();
        let schedule = FaultSchedule::from_events(vec![FaultSpec::ShardStall {
            shard: 1,
            at: 0.2,
            resume_at: 0.4,
        }]);
        let mut sharded = ShardedEngine::new(profile, w, 0, 2);
        sharded.force_shard_advance_budget(0, 0);
        ChaosBackend::new(sharded, &schedule)
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "advance budget exhausted")]
    fn an_engine_stall_under_chaos_asserts_in_debug() {
        let w = tpch();
        let mut backend = engine_stall_under_chaos(&w);
        ScheduleSession::builder(&w)
            .dbms(DbmsProfile::dbms_x().kind)
            .recovery(RecoveryPolicy::bounded())
            .build(&mut backend)
            .run(&mut FifoScheduler::new());
    }

    // Release-only: in debug the shard's own stall assert fires first (the
    // test above). Here the stall is recorded instead, and the session must
    // fail the round loudly via `stall_diagnostic` — never spin.
    #[cfg(not(debug_assertions))]
    #[test]
    #[should_panic(expected = "stalled mid-round")]
    fn an_engine_stall_under_chaos_fails_the_round_loudly() {
        let w = tpch();
        let mut backend = engine_stall_under_chaos(&w);
        ScheduleSession::builder(&w)
            .dbms(DbmsProfile::dbms_x().kind)
            .recovery(RecoveryPolicy::bounded())
            .build(&mut backend)
            .run(&mut FifoScheduler::new());
    }

    #[test]
    fn transport_chaos_retransmits_and_replays_identically() {
        let w = tpch();
        let profile = DbmsProfile::dbms_x();
        // The truncation arms just after the submissions at t = 0, so the
        // first exchange once time has passed is cut mid-frame; the outage
        // window sits mid-episode.
        let schedule = FaultSchedule::from_events(vec![
            FaultSpec::PartialWrite { at: 1e-3 },
            FaultSpec::Disconnect {
                at: 0.8,
                duration: 0.1,
            },
            FaultSpec::LatencySpike {
                at: 1.5,
                duration: 0.5,
                extra: 0.05,
            },
        ]);
        let run = || {
            let transport = ChaosTransport::new(InMemoryDuplex::lossless(), &schedule, 13);
            let server = WireServer::new(ExecutionEngine::new(profile.clone(), &w, 0));
            let mut wired = WireBackend::connect(server, transport)
                .expect("the faults arm after the handshake")
                .with_recovery(RecoveryPolicy::bounded());
            ScheduleSession::builder(&w)
                .dbms(profile.kind)
                .build(&mut wired)
                .run(&mut FifoScheduler::new())
        };
        let log = run();
        assert_eq!(log.len(), w.len());
        assert!(
            log.fault_count("transport_retransmit") >= 1,
            "the truncated exchange must have been retransmitted"
        );
        assert_eq!(log.lost_queries(), 0, "the wire recovers below the session");
        assert_eq!(log.to_json(), run().to_json());
    }

    #[test]
    fn generated_schedules_drive_complete_recoverable_episodes() {
        let w = tpch();
        let profile = DbmsProfile::dbms_x();
        // A generated degraded-cluster schedule (not hand-placed) must also
        // complete and replay: the profile/seed pair is the whole identity.
        let chaos = FaultSchedule::generate(&ChaosProfile::degraded_cluster(2, 2.0), 5);
        let run = || {
            let mut backend =
                ChaosBackend::new(ShardedEngine::new(profile.clone(), &w, 0, 2), &chaos);
            let mut router = FaultAwareRouter::new(LeastLoadedRouter);
            ScheduleSession::builder(&w)
                .dbms(profile.kind)
                .router(&mut router)
                .recovery(RecoveryPolicy::bounded())
                .build(&mut backend)
                .run(&mut FifoScheduler::new())
        };
        let log = run();
        assert_eq!(log.len(), w.len());
        assert_eq!(log.to_json(), run().to_json());
    }
}
