//! [`ChaosTransport`]: a [`WireTransport`] decorator that injects the
//! transport-layer faults of a [`FaultSchedule`] — outage windows that drop
//! chunks and tear the connection down, a partial write that truncates a
//! frame mid-chunk, and congestion windows that delay chunks — while staying
//! a byte-identical passthrough under the empty schedule.
//!
//! Connection teardowns surface to both endpoints as an **epoch bump** on
//! subsequent deliveries (see [`bq_wire::Delivery`]): the frame readers on
//! either side reset on the epoch change, so a truncated write is observed
//! as a cleanly lost frame — never as corrupted framing — and the client's
//! retransmission machinery (`WireBackend::with_recovery`) restores the
//! exchange.

use crate::schedule::{FaultSchedule, FaultSpec};
use bq_core::rng;
use bq_wire::{Delivery, InMemoryDuplex, TransportProfile, WireTransport};
use std::collections::VecDeque;

/// Salt of the truncation-length stream.
const TRUNCATE_SALT: u64 = 0x5F20_C4B9_8E67_D1A3;

/// Injects a [`FaultSchedule`]'s transport faults over any inner
/// [`WireTransport`] (see the [module docs](self)).
#[derive(Debug)]
pub struct ChaosTransport<T> {
    inner: T,
    seed: u64,
    /// Outage windows `(start, end)`, sorted by start.
    disconnects: Vec<(f64, f64)>,
    /// Armed truncation instants, sorted.
    partial_writes: Vec<f64>,
    /// Congestion windows `(start, end, extra)`, sorted by start.
    spikes: Vec<(f64, f64, f64)>,
    /// Outage windows already fully in the past (each bumped the epoch).
    passed_windows: usize,
    /// Truncations already fired.
    fired_truncations: usize,
    /// Current connection epoch, added onto the inner transport's own.
    epoch: u64,
    /// Epoch each in-flight client→server chunk was sent under (the inner
    /// transport is FIFO per direction, so a queue stays aligned).
    epochs_to_server: VecDeque<u64>,
    /// Epoch each in-flight server→client chunk was sent under.
    epochs_to_client: VecDeque<u64>,
}

impl ChaosTransport<InMemoryDuplex> {
    /// The schedule's transport faults over a zero-latency in-memory link.
    pub fn lossless(schedule: &FaultSchedule, seed: u64) -> Self {
        Self::new(InMemoryDuplex::lossless(), schedule, seed)
    }

    /// The schedule's transport faults over an in-memory link with the given
    /// latency model.
    pub fn with_profile(profile: TransportProfile, schedule: &FaultSchedule, seed: u64) -> Self {
        Self::new(InMemoryDuplex::new(profile), schedule, seed)
    }
}

impl<T: WireTransport> ChaosTransport<T> {
    /// Decorate `inner` with the transport faults of `schedule`. `seed`
    /// drives the truncation-length stream (every other instant comes from
    /// the schedule itself).
    pub fn new(inner: T, schedule: &FaultSchedule, seed: u64) -> Self {
        let mut disconnects = Vec::new();
        let mut partial_writes = Vec::new();
        let mut spikes = Vec::new();
        for event in schedule.transport_events() {
            match event {
                FaultSpec::Disconnect { at, duration } => disconnects.push((at, at + duration)),
                FaultSpec::PartialWrite { at } => partial_writes.push(at),
                FaultSpec::LatencySpike {
                    at,
                    duration,
                    extra,
                } => spikes.push((at, at + duration, extra)),
                // bq-lint: allow(panic-surface): transport_events() yields only transport faults; locally provable
                other => unreachable!("transport_events filtered: {other:?}"),
            }
        }
        // The schedule is sorted by onset, so the per-class lists are too.
        Self {
            inner,
            seed,
            disconnects,
            partial_writes,
            spikes,
            passed_windows: 0,
            fired_truncations: 0,
            epoch: 0,
            epochs_to_server: VecDeque::new(),
            epochs_to_client: VecDeque::new(),
        }
    }

    /// The decorated transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Bump the epoch once for every outage window now fully in the past:
    /// the connection re-established after each.
    fn roll_epoch(&mut self, now: f64) {
        while self
            .disconnects
            .get(self.passed_windows)
            .is_some_and(|&(_, end)| end <= now)
        {
            self.epoch += 1;
            self.passed_windows += 1;
        }
    }

    /// Whether the link is inside an outage window at `now`.
    fn link_down(&self, now: f64) -> bool {
        self.disconnects
            .get(self.passed_windows)
            .is_some_and(|&(start, end)| now >= start && now < end)
    }

    /// Extra transit delay a chunk sent at `now` suffers.
    fn spike_extra(&self, now: f64) -> f64 {
        self.spikes
            .iter()
            .filter(|&&(start, end, _)| now >= start && now < end)
            .map(|&(_, _, extra)| extra)
            .sum()
    }

    /// Seeded truncation length for the `index`-th partial write: keeps at
    /// least one byte and drops at least one, so the cut is always mid-chunk.
    fn truncated_len(&self, index: usize, len: usize) -> usize {
        debug_assert!(len >= 2);
        let unit = rng::stream_unit(self.seed, TRUNCATE_SALT, index as u64, 0);
        1 + ((unit * (len - 1) as f64) as usize).min(len - 2)
    }
}

impl<T: WireTransport> WireTransport for ChaosTransport<T> {
    fn send_to_server(&mut self, bytes: &[u8], now: f64) -> f64 {
        self.roll_epoch(now);
        if self.link_down(now) {
            // The chunk is lost in the outage; the sender learns nothing
            // (exactly like a write into a dying TCP connection).
            return now;
        }
        if self
            .partial_writes
            .get(self.fired_truncations)
            .is_some_and(|&at| now >= at)
        {
            let index = self.fired_truncations;
            self.fired_truncations += 1;
            if bytes.len() >= 2 {
                // Deliver a strict prefix under the old epoch, then tear the
                // connection down: the receiver buffers a partial frame it
                // will discard on the next delivery's epoch bump.
                let keep = self.truncated_len(index, bytes.len());
                let arrival = self.inner.send_to_server(&bytes[..keep], now);
                self.epochs_to_server.push_back(self.epoch);
                self.epoch += 1;
                return arrival;
            }
            // Nothing to cut mid-chunk: the whole write is lost with the
            // connection.
            self.epoch += 1;
            return now;
        }
        let arrival = self
            .inner
            .send_to_server(bytes, now + self.spike_extra(now));
        self.epochs_to_server.push_back(self.epoch);
        arrival
    }

    fn send_to_client(&mut self, bytes: &[u8], now: f64) -> f64 {
        self.roll_epoch(now);
        if self.link_down(now) {
            return now;
        }
        let arrival = self
            .inner
            .send_to_client(bytes, now + self.spike_extra(now));
        self.epochs_to_client.push_back(self.epoch);
        arrival
    }

    fn recv_at_server(&mut self) -> Option<Delivery> {
        let mut delivery = self.inner.recv_at_server()?;
        delivery.epoch += self
            .epochs_to_server
            .pop_front()
            // bq-lint: allow(panic-surface): send_to_server queues exactly one epoch per forwarded chunk; locally provable pairing
            .expect("every forwarded chunk queued its epoch");
        Some(delivery)
    }

    fn recv_at_client(&mut self) -> Option<Delivery> {
        let mut delivery = self.inner.recv_at_client()?;
        delivery.epoch += self
            .epochs_to_client
            .pop_front()
            // bq-lint: allow(panic-surface): send_to_client queues exactly one epoch per forwarded chunk; locally provable pairing
            .expect("every forwarded chunk queued its epoch");
        Some(delivery)
    }

    fn wait_for_client_data(&mut self) -> bool {
        // Forward the blocking seam verbatim: fault injection rewrites what
        // a delivery looks like, never when the inner transport can
        // produce one. Over the in-memory link this stays `false`, keeping
        // the empty-schedule passthrough byte-identical.
        self.inner.wait_for_client_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule_of(events: Vec<FaultSpec>) -> FaultSchedule {
        FaultSchedule::from_events(events)
    }

    #[test]
    fn empty_schedule_is_a_verbatim_passthrough() {
        let mut chaos = ChaosTransport::lossless(&FaultSchedule::empty(), 0);
        let mut plain = InMemoryDuplex::lossless();
        for i in 0..8u8 {
            let at = f64::from(i) * 0.5;
            assert_eq!(
                chaos.send_to_server(&[i, i + 1], at),
                plain.send_to_server(&[i, i + 1], at)
            );
            assert_eq!(
                chaos.send_to_client(&[i], at),
                plain.send_to_client(&[i], at)
            );
        }
        loop {
            let (c, p) = (chaos.recv_at_server(), plain.recv_at_server());
            assert_eq!(c, p);
            if c.is_none() {
                break;
            }
        }
        loop {
            let (c, p) = (chaos.recv_at_client(), plain.recv_at_client());
            assert_eq!(c, p);
            if c.is_none() {
                break;
            }
        }
    }

    #[test]
    fn outage_windows_drop_chunks_and_bump_the_epoch_after() {
        let s = schedule_of(vec![FaultSpec::Disconnect {
            at: 1.0,
            duration: 1.0,
        }]);
        let mut t = ChaosTransport::lossless(&s, 0);
        t.send_to_server(b"before", 0.5);
        t.send_to_server(b"inside", 1.5); // lost
        t.send_to_server(b"after", 2.5);
        let first = t.recv_at_server().expect("pre-outage chunk");
        assert_eq!((first.bytes.as_slice(), first.epoch), (&b"before"[..], 0));
        let second = t.recv_at_server().expect("post-outage chunk");
        assert_eq!((second.bytes.as_slice(), second.epoch), (&b"after"[..], 1));
        assert!(t.recv_at_server().is_none(), "the outage chunk is gone");
    }

    #[test]
    fn a_partial_write_delivers_a_strict_prefix_then_reconnects() {
        let s = schedule_of(vec![FaultSpec::PartialWrite { at: 1.0 }]);
        let mut t = ChaosTransport::lossless(&s, 42);
        t.send_to_server(b"whole-frame-bytes", 0.0);
        t.send_to_server(b"cut-this-one", 1.0);
        t.send_to_server(b"fresh", 2.0);
        let whole = t.recv_at_server().unwrap();
        assert_eq!(
            (whole.bytes.as_slice(), whole.epoch),
            (&b"whole-frame-bytes"[..], 0)
        );
        let cut = t.recv_at_server().unwrap();
        assert!(!cut.bytes.is_empty() && cut.bytes.len() < b"cut-this-one".len());
        assert_eq!(&cut.bytes[..], &b"cut-this-one"[..cut.bytes.len()]);
        assert_eq!(
            cut.epoch, 0,
            "the prefix still travels on the old connection"
        );
        let fresh = t.recv_at_server().unwrap();
        assert_eq!((fresh.bytes.as_slice(), fresh.epoch), (&b"fresh"[..], 1));
    }

    #[test]
    fn latency_spikes_delay_chunks_inside_the_window() {
        let s = schedule_of(vec![FaultSpec::LatencySpike {
            at: 1.0,
            duration: 1.0,
            extra: 0.3,
        }]);
        let mut t = ChaosTransport::lossless(&s, 0);
        assert_eq!(t.send_to_server(b"a", 0.5), 0.5);
        assert!((t.send_to_server(b"b", 1.5) - 1.8).abs() < 1e-12);
        assert_eq!(t.send_to_server(b"c", 2.5), 2.5);
    }
}
