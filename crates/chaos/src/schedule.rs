//! Replayable fault schedules: every chaos episode is a pure function of
//! `(workload, profile, seed, fault schedule)`, and the schedule itself is a
//! pure function of `(profile, seed)` — so a degraded-mode run replays
//! byte-identically, which is what lets the bench gate pin degraded-mode
//! performance the same way it pins the healthy cells.

use bq_core::rng;

/// Salt of the disconnect-instant stream.
const DISCONNECT_SALT: u64 = 0x9D8A_4F2C_6E1B_3057;
/// Salt of the partial-write-instant stream.
const PARTIAL_WRITE_SALT: u64 = 0x42D1_9C6E_85F3_0B2A;
/// Salt of the latency-spike-instant stream.
const SPIKE_SALT: u64 = 0x7B3F_E08D_24C6_91A5;
/// Salt of the shard-stall stream (instants and shard picks).
const STALL_SALT: u64 = 0xC65A_12F8_D94E_703B;
/// Salt of the shard-death stream (instants and shard picks).
const DEATH_SALT: u64 = 0x1E97_B350_6A8C_F4D2;

fn draw(seed: u64, salt: u64, index: usize, lane: u64) -> f64 {
    rng::stream_unit(seed, salt, index as u64, lane)
}

/// One planned fault, placed in virtual time.
///
/// Transport faults ([`FaultSpec::Disconnect`], [`FaultSpec::PartialWrite`],
/// [`FaultSpec::LatencySpike`]) are injected by
/// [`ChaosTransport`](crate::ChaosTransport); shard faults
/// ([`FaultSpec::ShardStall`], [`FaultSpec::ShardDeath`]) by
/// [`ChaosBackend`](crate::ChaosBackend).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// The link is down for `[at, at + duration)`: chunks sent inside the
    /// window are lost, and once the window passes the connection
    /// re-establishes under a new epoch.
    Disconnect {
        /// Start of the outage window.
        at: f64,
        /// Length of the outage window.
        duration: f64,
    },
    /// The first client→server chunk sent at or after `at` is cut mid-write
    /// to a seeded prefix length and the connection is torn down — the
    /// truncated frame must surface as a clean loss (frame-reader reset on
    /// the epoch change), never as corruption.
    PartialWrite {
        /// Armed from this instant; fires on the next chunk.
        at: f64,
    },
    /// Chunks sent inside `[at, at + duration)` leave `extra` seconds late.
    LatencySpike {
        /// Start of the congestion window.
        at: f64,
        /// Length of the congestion window.
        duration: f64,
        /// Additional transit delay per chunk.
        extra: f64,
    },
    /// Shard `shard` freezes at `at`: completions that would land inside
    /// `[at, resume_at)` are withheld and deliver, re-stamped, at
    /// `resume_at` (bounded resume).
    ShardStall {
        /// The frozen shard.
        shard: usize,
        /// Freeze instant.
        at: f64,
        /// Instant the shard thaws and withheld completions deliver.
        resume_at: f64,
    },
    /// Shard `shard` dies at `at` and never comes back: every completion it
    /// would have produced from then on is swallowed and surfaces as a
    /// [`bq_core::FaultEvent::QueryLost`] instead.
    ShardDeath {
        /// The dead shard.
        shard: usize,
        /// Death instant.
        at: f64,
    },
}

impl FaultSpec {
    /// The virtual instant the fault begins.
    pub fn at(&self) -> f64 {
        match *self {
            FaultSpec::Disconnect { at, .. }
            | FaultSpec::PartialWrite { at }
            | FaultSpec::LatencySpike { at, .. }
            | FaultSpec::ShardStall { at, .. }
            | FaultSpec::ShardDeath { at, .. } => at,
        }
    }

    /// Whether the fault is injected at the transport layer.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            FaultSpec::Disconnect { .. }
                | FaultSpec::PartialWrite { .. }
                | FaultSpec::LatencySpike { .. }
        )
    }
}

/// How many faults of each class a generated schedule carries, and where in
/// virtual time they land.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosProfile {
    /// Virtual window `[0, horizon)` fault instants are drawn from.
    pub horizon: f64,
    /// Transport outage windows.
    pub disconnects: usize,
    /// Length of each outage window.
    pub disconnect_duration: f64,
    /// Mid-frame write truncations (each tears the connection down).
    pub partial_writes: usize,
    /// Congestion windows.
    pub latency_spikes: usize,
    /// Length of each congestion window.
    pub spike_duration: f64,
    /// Additional per-chunk delay inside a congestion window.
    pub spike_extra: f64,
    /// Bounded shard freezes.
    pub shard_stalls: usize,
    /// Length of each freeze.
    pub stall_duration: f64,
    /// Permanent shard deaths (capped below the shard count — at least one
    /// shard must survive or no recovery can make progress).
    pub shard_deaths: usize,
    /// Shard count of the topology the schedule targets (shard picks are
    /// drawn from it).
    pub shards: usize,
}

impl ChaosProfile {
    /// No faults at all — [`FaultSchedule::generate`] yields the empty
    /// schedule, under which both chaos decorators are byte-identical
    /// passthroughs.
    pub fn quiet() -> Self {
        Self {
            horizon: 0.0,
            disconnects: 0,
            disconnect_duration: 0.0,
            partial_writes: 0,
            latency_spikes: 0,
            spike_duration: 0.0,
            spike_extra: 0.0,
            shard_stalls: 0,
            stall_duration: 0.0,
            shard_deaths: 0,
            shards: 1,
        }
    }

    /// A flaky link: outages, a mid-frame truncation and congestion windows
    /// spread over `[0, horizon)`. Transport faults only.
    pub fn flaky_link(horizon: f64) -> Self {
        assert!(horizon > 0.0 && horizon.is_finite());
        Self {
            horizon,
            disconnects: 2,
            disconnect_duration: horizon * 0.02,
            partial_writes: 1,
            latency_spikes: 2,
            spike_duration: horizon * 0.05,
            spike_extra: horizon * 0.01,
            ..Self::quiet()
        }
    }

    /// A degrading cluster of `shards` shards: one bounded stall and one
    /// permanent death over `[0, horizon)`. Shard faults only.
    pub fn degraded_cluster(shards: usize, horizon: f64) -> Self {
        assert!(
            shards >= 2,
            "a death needs a surviving shard to fail over to"
        );
        assert!(horizon > 0.0 && horizon.is_finite());
        Self {
            horizon,
            shard_stalls: 1,
            stall_duration: horizon * 0.1,
            shard_deaths: 1,
            shards,
            ..Self::quiet()
        }
    }
}

/// A replayable plan of fault events, sorted by onset instant.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultSpec>,
}

impl FaultSchedule {
    /// The schedule with no faults: both chaos decorators become
    /// byte-identical passthroughs under it.
    pub fn empty() -> Self {
        Self { events: Vec::new() }
    }

    /// A schedule of hand-placed events (sorted by onset instant) — for
    /// targeted episodes where the seeded generator's placement is too
    /// coarse.
    pub fn from_events(mut events: Vec<FaultSpec>) -> Self {
        events.sort_by(|a, b| a.at().total_cmp(&b.at()));
        Self { events }
    }

    /// Generate the schedule of `(profile, seed)` — a pure function of its
    /// arguments, so the same pair always yields the same plan.
    ///
    /// # Panics
    /// Panics if the profile asks for at least as many shard deaths as it
    /// has shards (no shard would survive to absorb failover).
    pub fn generate(profile: &ChaosProfile, seed: u64) -> Self {
        assert!(
            profile.shard_deaths == 0 || profile.shard_deaths < profile.shards,
            "at least one shard must survive the schedule"
        );
        let mut events = Vec::new();
        for i in 0..profile.disconnects {
            events.push(FaultSpec::Disconnect {
                at: profile.horizon * draw(seed, DISCONNECT_SALT, i, 0),
                duration: profile.disconnect_duration,
            });
        }
        for i in 0..profile.partial_writes {
            events.push(FaultSpec::PartialWrite {
                at: profile.horizon * draw(seed, PARTIAL_WRITE_SALT, i, 0),
            });
        }
        for i in 0..profile.latency_spikes {
            events.push(FaultSpec::LatencySpike {
                at: profile.horizon * draw(seed, SPIKE_SALT, i, 0),
                duration: profile.spike_duration,
                extra: profile.spike_extra,
            });
        }
        for i in 0..profile.shard_stalls {
            let at = profile.horizon * draw(seed, STALL_SALT, i, 0);
            events.push(FaultSpec::ShardStall {
                shard: (draw(seed, STALL_SALT, i, 1) * profile.shards as f64) as usize
                    % profile.shards.max(1),
                at,
                resume_at: at + profile.stall_duration,
            });
        }
        let mut dead = vec![false; profile.shards];
        for i in 0..profile.shard_deaths {
            // Probe linearly past already-picked shards so every death
            // targets a distinct shard (a second death of a dead shard would
            // be a no-op).
            let mut shard =
                (draw(seed, DEATH_SALT, i, 1) * profile.shards as f64) as usize % profile.shards;
            while dead[shard] {
                shard = (shard + 1) % profile.shards;
            }
            dead[shard] = true;
            events.push(FaultSpec::ShardDeath {
                shard,
                at: profile.horizon * draw(seed, DEATH_SALT, i, 0),
            });
        }
        events.sort_by(|a, b| a.at().total_cmp(&b.at()));
        Self { events }
    }

    /// Every planned fault, sorted by onset.
    pub fn events(&self) -> &[FaultSpec] {
        &self.events
    }

    /// The transport-layer faults (for [`crate::ChaosTransport`]).
    pub fn transport_events(&self) -> Vec<FaultSpec> {
        self.events
            .iter()
            .copied()
            .filter(FaultSpec::is_transport)
            .collect()
    }

    /// The shard-layer faults (for [`crate::ChaosBackend`]).
    pub fn shard_events(&self) -> Vec<FaultSpec> {
        self.events
            .iter()
            .copied()
            .filter(|e| !e.is_transport())
            .collect()
    }

    /// Whether the schedule carries no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_profile_and_seed() {
        let profile = ChaosProfile::degraded_cluster(4, 100.0);
        let a = FaultSchedule::generate(&profile, 7);
        let b = FaultSchedule::generate(&profile, 7);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(&profile, 8);
        assert_ne!(a, c, "the seed must vary the plan");
    }

    #[test]
    fn schedules_are_sorted_and_split_cleanly_by_layer() {
        let mut profile = ChaosProfile::flaky_link(50.0);
        profile.shard_stalls = 2;
        profile.stall_duration = 1.0;
        profile.shard_deaths = 1;
        profile.shards = 3;
        let s = FaultSchedule::generate(&profile, 3);
        assert_eq!(s.len(), 8);
        assert!(s.events().windows(2).all(|w| w[0].at() <= w[1].at()));
        assert_eq!(s.transport_events().len() + s.shard_events().len(), s.len());
        assert!(s.transport_events().iter().all(FaultSpec::is_transport));
        for e in s.events() {
            assert!((0.0..50.0).contains(&e.at()));
        }
    }

    #[test]
    fn deaths_target_distinct_shards_and_never_kill_everything() {
        let mut profile = ChaosProfile::quiet();
        profile.horizon = 10.0;
        profile.shards = 4;
        profile.shard_deaths = 3;
        let s = FaultSchedule::generate(&profile, 11);
        let mut shards: Vec<usize> = s
            .shard_events()
            .iter()
            .map(|e| match e {
                FaultSpec::ShardDeath { shard, .. } => *shard,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        shards.sort_unstable();
        shards.dedup();
        assert_eq!(shards.len(), 3, "every death targets its own shard");
    }

    #[test]
    #[should_panic(expected = "at least one shard must survive")]
    fn killing_every_shard_is_rejected() {
        let mut profile = ChaosProfile::quiet();
        profile.horizon = 10.0;
        profile.shards = 2;
        profile.shard_deaths = 2;
        let _ = FaultSchedule::generate(&profile, 0);
    }

    #[test]
    fn the_empty_schedule_is_empty() {
        assert!(FaultSchedule::empty().is_empty());
        assert_eq!(FaultSchedule::empty().len(), 0);
        assert!(FaultSchedule::generate(&ChaosProfile::quiet(), 9).is_empty());
    }
}
