//! [`ChaosBackend`]: an [`ExecutorBackend`] decorator that injects the
//! shard-layer faults of a [`FaultSchedule`] — bounded stalls and permanent
//! deaths — over any inner backend with a shard topology.
//!
//! # Fault model
//!
//! * **Stall** — shard `s` freezes over `[at, resume_at)`: completions the
//!   inner backend produces on `s` inside the window are withheld and
//!   delivered re-stamped at `resume_at` (the work resumed where it paused;
//!   the bounded-resume simplification charges the whole pause to the
//!   completion instant). The affected slots stay observably busy until the
//!   withheld completion delivers, so the session never double-books them.
//! * **Death** — shard `s` dies at `at`: every completion it would have
//!   produced from then on is swallowed; the query surfaces as a
//!   [`FaultEvent::QueryLost`] through [`ExecutorBackend::poll_fault`]
//!   instead, and its slot frees. A session must run with a
//!   [`bq_core::RecoveryPolicy`] (and should route with a
//!   [`bq_core::FaultAwareRouter`]) to resubmit the lost queries elsewhere.
//!
//! Fault *events* ([`FaultEvent::ShardStalled`] / `ShardResumed` /
//! `ShardDied`) are emitted through `poll_fault` as the observable clock
//! crosses their instants — the session drains them every iteration, so the
//! fault-aware router learns about a down shard before the next placement.
//!
//! With the empty schedule every method forwards verbatim and the decorator
//! is byte-identical through the whole session stack — pinned by proptests
//! and the conformance suite.

use crate::schedule::{FaultSchedule, FaultSpec};
use bq_core::{ExecEvent, ExecutorBackend, FaultEvent, ShardTopology};
use bq_dbms::{AdvanceStall, ConnectionSlot, QueryCompletion, RunParams};
use bq_obs::{Obs, TraceEvent, TraceKind};
use bq_plan::QueryId;
use std::collections::VecDeque;

const TIME_EPS: f64 = 1e-9;

/// Injects a [`FaultSchedule`]'s shard faults over any inner backend (see
/// the [module docs](self)).
#[derive(Debug)]
pub struct ChaosBackend<B> {
    inner: B,
    /// Fault events in onset order, emitted as the clock crosses them.
    timeline: Vec<FaultEvent>,
    emitted: usize,
    /// Emitted (or synthesized) faults awaiting `poll_fault`.
    faults: VecDeque<FaultEvent>,
    /// Stall windows `(shard, at, resume_at)` for completion classification.
    stalls: Vec<(usize, f64, f64)>,
    /// Death instants `(shard, at)` for completion classification.
    deaths: Vec<(usize, f64)>,
    /// Withheld completions `(release_at, completion)` — already re-stamped
    /// to finish at their release instant.
    held: Vec<(f64, QueryCompletion)>,
    /// Captured busy slots of withheld completions (the inner backend freed
    /// them; observably they stay busy until release).
    held_slots: Vec<(usize, ConnectionSlot)>,
    /// Session-observable slots: the inner slots overlaid with `held_slots`.
    mirror: Vec<ConnectionSlot>,
    /// Clock floor: delivering a withheld completion moves observable time
    /// to its release instant even when the idle inner backend refuses to
    /// advance that far.
    now_floor: f64,
    /// Observability handle; [`Obs::off`] unless
    /// [`ChaosBackend::set_obs`] installed one.
    obs: Obs,
}

/// Per-kind counter name for an observed fault event.
fn fault_counter(event: &FaultEvent) -> &'static str {
    match event {
        FaultEvent::TransportRetransmit { .. } => "chaos_transport_retransmit",
        FaultEvent::ShardStalled { .. } => "chaos_shard_stalled",
        FaultEvent::ShardResumed { .. } => "chaos_shard_resumed",
        FaultEvent::ShardDied { .. } => "chaos_shard_died",
        FaultEvent::QueryLost { .. } => "chaos_query_lost",
        FaultEvent::QueryResubmitted { .. } => "chaos_query_resubmitted",
    }
}

/// Shard coordinate of a fault event, if it has one.
fn fault_shard(event: &FaultEvent) -> Option<usize> {
    match event {
        FaultEvent::ShardStalled { shard, .. }
        | FaultEvent::ShardResumed { shard, .. }
        | FaultEvent::ShardDied { shard, .. } => Some(*shard),
        _ => None,
    }
}

impl<B: ExecutorBackend> ChaosBackend<B> {
    /// Decorate `inner` with the shard faults of `schedule`.
    pub fn new(inner: B, schedule: &FaultSchedule) -> Self {
        let mut timeline = Vec::new();
        let mut stalls = Vec::new();
        let mut deaths = Vec::new();
        for event in schedule.shard_events() {
            match event {
                FaultSpec::ShardStall {
                    shard,
                    at,
                    resume_at,
                } => {
                    timeline.push(FaultEvent::ShardStalled {
                        shard,
                        at,
                        resume_at,
                    });
                    timeline.push(FaultEvent::ShardResumed {
                        shard,
                        at: resume_at,
                    });
                    stalls.push((shard, at, resume_at));
                }
                FaultSpec::ShardDeath { shard, at } => {
                    timeline.push(FaultEvent::ShardDied { shard, at });
                    deaths.push((shard, at));
                }
                // bq-lint: allow(panic-surface): shard_events() yields only shard faults; locally provable
                other => unreachable!("shard_events filtered: {other:?}"),
            }
        }
        timeline.sort_by(|a, b| a.at().total_cmp(&b.at()));
        let mirror = inner.connections().to_vec();
        Self {
            inner,
            timeline,
            emitted: 0,
            faults: VecDeque::new(),
            stalls,
            deaths,
            held: Vec::new(),
            held_slots: Vec::new(),
            mirror,
            now_floor: 0.0,
            obs: Obs::off(),
        }
    }

    /// Observe the fault stream through `obs`: every fault surfaced by
    /// [`ExecutorBackend::poll_fault`] (injected by this decorator or
    /// bubbled up from the inner backend) increments a per-kind
    /// `chaos_*` counter and emits a [`TraceKind::FaultInjected`] event
    /// stamped with the fault's virtual instant and shard, when it has
    /// one. Observation is read-only — the schedule, classification and
    /// clock floor are untouched, so episodes stay byte-identical.
    pub fn set_obs(&mut self, obs: Obs) {
        obs.preregister(
            &[
                "chaos_transport_retransmit",
                "chaos_shard_stalled",
                "chaos_shard_resumed",
                "chaos_shard_died",
                "chaos_query_lost",
                "chaos_query_resubmitted",
            ],
            &[],
        );
        self.obs = obs;
    }

    /// The decorated backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Completions currently withheld by a stalled shard.
    pub fn withheld(&self) -> usize {
        self.held.len()
    }

    /// Queue every timeline event whose onset the observable clock has
    /// crossed.
    fn sync_timeline(&mut self) {
        let now = self.now();
        while self
            .timeline
            .get(self.emitted)
            .is_some_and(|e| e.at() <= now + TIME_EPS)
        {
            self.faults.push_back(self.timeline[self.emitted]);
            self.emitted += 1;
        }
    }

    /// Rebuild the observable slots from the inner backend plus the
    /// withheld-completion overlay.
    fn refresh_mirror(&mut self) {
        self.mirror.clear();
        self.mirror.extend_from_slice(self.inner.connections());
        for &(connection, slot) in &self.held_slots {
            self.mirror[connection] = slot;
        }
    }

    /// Shard owning `connection` under the inner topology.
    fn shard_of(&self, connection: usize) -> usize {
        connection / self.inner.shard_topology().connections_per_shard()
    }

    /// Whether `shard` is dead by `instant`.
    fn dead_by(&self, shard: usize, instant: f64) -> bool {
        self.deaths
            .iter()
            .any(|&(s, at)| s == shard && instant >= at - TIME_EPS)
    }

    /// The stall window holding a completion on `shard` at `instant`, if
    /// any: returns the release instant.
    fn stalled_until(&self, shard: usize, instant: f64) -> Option<f64> {
        self.stalls
            .iter()
            .filter(|&&(s, at, resume)| {
                s == shard && instant >= at - TIME_EPS && instant < resume - TIME_EPS
            })
            .map(|&(_, _, resume)| resume)
            .next()
    }

    /// Index of a withheld completion that is due at the observable clock.
    fn due_held(&self) -> Option<usize> {
        let now = self.now();
        self.held
            .iter()
            .position(|&(release, _)| release <= now + TIME_EPS)
    }

    /// Index of the earliest withheld completion.
    fn earliest_held(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, &(release, _)) in self.held.iter().enumerate() {
            match best {
                Some(b) if release >= self.held[b].0 => {}
                _ => best = Some(i),
            }
        }
        best
    }

    /// Deliver the withheld completion at `idx`, freeing its overlay slot
    /// and lifting the clock floor to its release instant.
    fn release_held(&mut self, idx: usize) -> ExecEvent {
        let (release, completion) = self.held.remove(idx);
        self.held_slots
            .retain(|&(connection, _)| connection != completion.connection);
        if release > self.now_floor {
            self.now_floor = release;
        }
        self.refresh_mirror();
        self.sync_timeline();
        ExecEvent::Completed(completion)
    }

    /// Classify one inner completion: deliver it, withhold it (stall) or
    /// swallow it into a loss (death). Returns `None` when the completion
    /// was absorbed and the caller should keep polling.
    fn classify(&mut self, completion: QueryCompletion) -> Option<ExecEvent> {
        let shard = self.shard_of(completion.connection);
        if self.dead_by(shard, completion.finished_at) {
            // The shard died before this completion could surface: the
            // query is lost. Its inner slot already freed, so the session
            // can resubmit it elsewhere once the fault is drained.
            self.faults.push_back(FaultEvent::QueryLost {
                query: completion.query,
                connection: completion.connection,
                at: self.now(),
            });
            self.refresh_mirror();
            return None;
        }
        if let Some(release) = self.stalled_until(shard, completion.finished_at) {
            // Withhold: observably the query is still running until the
            // shard thaws.
            self.held_slots.push((
                completion.connection,
                ConnectionSlot::Busy {
                    query: completion.query,
                    params: completion.params,
                    started_at: completion.started_at,
                },
            ));
            let mut held = completion;
            held.finished_at = release;
            self.held.push((release, held));
            self.refresh_mirror();
            return None;
        }
        self.refresh_mirror();
        Some(ExecEvent::Completed(completion))
    }
}

impl<B: ExecutorBackend> ExecutorBackend for ChaosBackend<B> {
    fn connections(&self) -> &[ConnectionSlot] {
        &self.mirror
    }

    fn now(&self) -> f64 {
        let inner = self.inner.now();
        if self.now_floor > inner {
            self.now_floor
        } else {
            inner
        }
    }

    fn submit(&mut self, query: QueryId, params: RunParams, connection: usize) {
        assert!(
            self.mirror[connection].is_free(),
            "connection {connection} is observably occupied"
        );
        self.inner.submit(query, params, connection);
        self.refresh_mirror();
    }

    fn submit_batch(&mut self, batch: &[(QueryId, RunParams, usize)]) {
        for &(_, _, connection) in batch {
            assert!(
                self.mirror[connection].is_free(),
                "connection {connection} is observably occupied"
            );
        }
        self.inner.submit_batch(batch);
        self.refresh_mirror();
    }

    fn poll_event(&mut self) -> ExecEvent {
        loop {
            self.sync_timeline();
            if let Some(idx) = self.due_held() {
                return self.release_held(idx);
            }
            if !self.inner.events_pending() {
                if let Some(earliest) = self.earliest_held() {
                    // Nothing buffered: move toward the thaw instant, but
                    // deliver any completion the inner backend produces on
                    // the way first.
                    let release = self.held[earliest].0;
                    self.inner.advance_to(release);
                    self.sync_timeline();
                    if !self.inner.events_pending() {
                        // The inner backend reached (or, idle, refused) the
                        // bound with nothing to say: the thaw is the next
                        // observable instant.
                        return self.release_held(earliest);
                    }
                }
            }
            let event = self.inner.poll_event();
            self.sync_timeline();
            match event {
                ExecEvent::Completed(completion) => {
                    if let Some(delivered) = self.classify(completion) {
                        return delivered;
                    }
                }
                ExecEvent::Submitted { .. } => {
                    self.refresh_mirror();
                    return event;
                }
                ExecEvent::Idle => {
                    if self.held.is_empty() {
                        self.refresh_mirror();
                        return ExecEvent::Idle;
                    }
                    // Withheld completions remain: loop around to release
                    // the earliest.
                }
            }
        }
    }

    fn events_pending(&self) -> bool {
        self.inner.events_pending() || self.due_held().is_some()
    }

    fn advance_to(&mut self, until: f64) {
        if self.inner.events_pending() || self.due_held().is_some() {
            // Buffered events precede the bound (the contract every backend
            // keeps): the caller drains them first.
            return;
        }
        // Never advance past a thaw instant — its completion is the next
        // observable event.
        let bound = match self.earliest_held() {
            Some(idx) if self.held[idx].0 < until => self.held[idx].0,
            _ => until,
        };
        self.inner.advance_to(bound);
        self.refresh_mirror();
        self.sync_timeline();
    }

    fn cancel(&mut self, connection: usize) -> Option<QueryCompletion> {
        if self
            .held_slots
            .iter()
            .any(|&(held_connection, _)| held_connection == connection)
        {
            // The natural completion is already in the observable past of
            // the stalled shard — it wins and will deliver at the thaw.
            return None;
        }
        let completion = self.inner.cancel(connection);
        self.refresh_mirror();
        completion
    }

    fn stall_diagnostic(&self) -> Option<AdvanceStall> {
        self.inner.stall_diagnostic()
    }

    fn shard_topology(&self) -> ShardTopology {
        self.inner.shard_topology()
    }

    fn poll_fault(&mut self) -> Option<FaultEvent> {
        self.sync_timeline();
        let fault = self
            .faults
            .pop_front()
            .or_else(|| self.inner.poll_fault())?;
        self.obs.inc(fault_counter(&fault));
        let mut event = TraceEvent::new(TraceKind::FaultInjected, fault.at());
        if let Some(shard) = fault_shard(&fault) {
            event = event.with_shard(shard);
        }
        self.obs.emit(event);
        Some(fault)
    }

    fn known_query_count(&self) -> Option<usize> {
        self.inner.known_query_count()
    }
}
