//! Offline stand-in for `proptest`.
//!
//! Supports the subset the test-suite uses: the `proptest!` macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//! `ident in range` argument strategies, plus `prop_assert!` /
//! `prop_assert_eq!`. Inputs are sampled deterministically per (test name,
//! case index), so failures reproduce; there is no shrinking.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many sampled inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Something inputs can be sampled from (here: integer ranges).
pub trait Strategy {
    /// The sampled value type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64);

/// Deterministic RNG for one (property, case) pair.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Define property tests (stand-in for proptest's macro of the same name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// Assert within a property (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        case_rng, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}
