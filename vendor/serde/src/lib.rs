//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework with the same surface the code uses:
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::{to_string,
//! from_str}`. Instead of serde's visitor architecture, everything routes
//! through one in-memory [`Value`] tree; the derive macros (re-exported from
//! the sibling `serde_derive` proc-macro crate) generate `to_value` /
//! `from_value` implementations for named-field structs, tuple structs and
//! unit-variant enums — the only shapes this workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

/// A shared `Null` used when a key is absent (lets `Option` fields default).
pub static NULL: Value = Value::Null;

impl Value {
    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload of a number value.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Look up `key` in map entries, falling back to [`NULL`] when absent.
    pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_num()
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))?;
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_num()
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))?;
                Ok(n as $t)
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($name::from_value(
                    seq.get($idx).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
