//! Offline stand-in for `serde_json`: a compact JSON writer and a
//! recursive-descent parser over the vendored [`serde::Value`] model.
//!
//! Numbers round-trip: integers below 2^53 print without a decimal point,
//! everything else uses Rust's shortest-representation float `Display`,
//! which parses back to the identical `f64`.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_num(*n, out)?,
        Value::Str(s) => write_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_num(n: f64, out: &mut String) -> Result<(), Error> {
    if !n.is_finite() {
        return Err(Error::custom("JSON cannot represent NaN/Infinity"));
    }
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
    Ok(())
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                core::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let s = self
                        .bytes
                        .get(start..start + width)
                        .and_then(|chunk| core::str::from_utf8(chunk).ok())
                        .ok_or_else(|| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Num(1.0),
            Value::Num(-0.125),
            Value::Num(0.1 + 0.2),
            Value::Str("hé\"llo\n".to_string()),
        ] {
            let s = to_string(&v).unwrap();
            let back: Value = from_str(&s).unwrap();
            assert_eq!(back, v, "via {s}");
        }
    }

    #[test]
    fn roundtrip_structures() {
        let v = Value::Map(vec![
            (
                "a".to_string(),
                Value::Seq(vec![Value::Num(1.0), Value::Null]),
            ),
            ("b".to_string(), Value::Map(vec![])),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":[1,null],"b":{}}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&Value::Num(42.0)).unwrap(), "42");
        assert_eq!(to_string(&Value::Num(42.5)).unwrap(), "42.5");
    }
}
