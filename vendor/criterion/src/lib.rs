//! Offline stand-in for `criterion` with the subset of the API the bench
//! suite uses: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function(|b| b.iter(..))`, `group.finish()` and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs its
//! closure `sample_size` times and prints mean / min wall-clock per iteration.

use std::time::Instant;

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls `iter`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
        } else {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let min = samples.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            println!(
                "{}/{id}: mean {:.3} ms, min {:.3} ms over {} samples",
                self.name,
                mean * 1e3,
                min * 1e3,
                samples.len()
            );
        }
        self
    }

    /// End the group (printing happens per benchmark; nothing left to do).
    pub fn finish(&mut self) {}
}

/// Times a closure over the group's sample count.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` once per sample, recording wall-clock seconds per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

/// Collect bench functions under one group name (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running every group (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
