//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the small slice of the `rand` API it actually uses: a deterministic
//! seedable [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64), the
//! [`Rng`] extension methods `gen` / `gen_range` / `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The streams are *not* identical to upstream
//! `rand`; determinism per seed is the only contract the workspace relies on.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly (floats are in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's standard RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2..=3);
            assert!((2..=3).contains(&w));
            let f = rng.gen_range(-1.5f32..1.5);
            assert!((-1.5..1.5).contains(&f));
            let d = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&d));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
