//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (neither is available offline): the input
//! item is parsed directly from the [`proc_macro::TokenStream`] and the impl
//! is emitted as source text. Supported shapes — the only ones this workspace
//! derives — are:
//!
//! * structs with named fields (serialized as a JSON object),
//! * tuple structs (newtypes serialize transparently, larger ones as arrays),
//! * enums whose variants are all unit variants (serialized as their name),
//! * optional plain type parameters (bounded with `serde::Serialize` /
//!   `serde::Deserialize` in the generated impl).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

/// Skip `#[...]` attribute groups starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...); returns new index.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse `<...>` generics starting at `i` (which must point at `<`).
/// Returns (type parameter names, index just past the closing `>`).
fn parse_generics(tokens: &[TokenTree], mut i: usize) -> (Vec<String>, usize) {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut expect_param = true;
    while let Some(tok) = tokens.get(i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                expect_param = true;
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime parameter: consume the quote and its ident.
                expect_param = false;
                i += 2;
            }
            TokenTree::Ident(id) if depth == 1 && expect_param => {
                params.push(id.to_string());
                expect_param = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (params, i)
}

/// Split the tokens of a named-fields body into field names.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        i = skip_attrs(body, i);
        i = skip_vis(body, i);
        let Some(TokenTree::Ident(id)) = body.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect ':' then skip the type up to the next top-level ','.
        let mut angle = 0i32;
        while let Some(tok) = body.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Count the fields of a tuple-struct body.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    let mut saw_any = false;
    for (idx, tok) in body.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0
                    // A trailing comma does not open a new field.
                    && idx + 1 < body.len() =>
                {
                    count += 1;
                }
                _ => {}
            }
        }
        saw_any = true;
    }
    if saw_any {
        count
    } else {
        0
    }
}

/// Parse an enum body into unit-variant names (panics on payload variants).
fn parse_variants(body: &[TokenTree], item: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        i = skip_attrs(body, i);
        let Some(TokenTree::Ident(id)) = body.get(i) else {
            break;
        };
        variants.push(id.to_string());
        i += 1;
        match body.get(i) {
            Some(TokenTree::Group(_)) => panic!(
                "serde stand-in: enum {item} has a payload variant; only unit variants are supported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            _ => panic!("serde stand-in: unexpected token in enum {item}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in: expected item name, got {other:?}"),
    };
    i += 1;
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let (params, next) = parse_generics(&tokens, i);
            generics = params;
            i = next;
        }
    }
    // Skip a `where` clause if present (none in this workspace, but cheap).
    while let Some(tok) = tokens.get(i) {
        match tok {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }
    let shape = if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Enum(parse_variants(&body, &name))
            }
            other => panic!("serde stand-in: expected enum body for {name}, got {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Named(parse_named_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Tuple(count_tuple_fields(&body))
            }
            _ => Shape::Unit,
        }
    };
    Item {
        name,
        generics,
        shape,
    }
}

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> serde::{trait_name} for {}<{}>",
            bounded.join(", "),
            item.name,
            item.generics.join(", ")
        )
    }
}

/// Derive `serde::Serialize` (`to_value`) for the supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{}::{v} => serde::Value::Str(\"{v}\".to_string())",
                        item.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let out = format!(
        "{} {{ fn to_value(&self) -> serde::Value {{ {body} }} }}",
        impl_header(&item, "Serialize")
    );
    out.parse().expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (`from_value`) for the supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(serde::Value::map_get(map, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "let map = v.as_map().ok_or_else(|| serde::Error::custom(\"expected map for {name}\"))?;\
                 Ok({name} {{ {} }})",
                entries.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_value(seq.get({i}).ok_or_else(|| serde::Error::custom(\"tuple too short for {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| serde::Error::custom(\"expected array for {name}\"))?;\
                 Ok({name}({}))",
                entries.join(", ")
            )
        }
        Shape::Unit => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v})"))
                .collect();
            format!(
                "match v.as_str() {{ {}, _ => Err(serde::Error::custom(\"unknown variant for {name}\")) }}",
                arms.join(", ")
            )
        }
    };
    let out = format!(
        "{} {{ fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }} }}",
        impl_header(&item, "Deserialize")
    );
    out.parse().expect("generated Deserialize impl must parse")
}
