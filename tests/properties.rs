//! Property-based tests on cross-crate invariants: the execution engine never
//! loses queries and respects physical bounds, the async submission adapter
//! is a byte-identical passthrough at zero latency and a pure function of its
//! dispatch profile otherwise, the wire-protocol backend is a byte-identical
//! passthrough over the zero-latency transport and a pure function of its
//! transport profile otherwise, the chaos decorators are byte-identical
//! passthroughs under the empty fault schedule and recovered chaos episodes
//! are a pure function of the schedule otherwise, the gain matrix is
//! symmetric, masking never removes every configuration, and clustering
//! always yields a partition — for arbitrary workload subsets, seeds and
//! parameters.

use bqsched::adapter::{AsyncAdapter, DispatchProfile};
use bqsched::chaos::{ChaosBackend, ChaosTransport, FaultSchedule, FaultSpec};
use bqsched::core::{
    collect_history, FaultAwareRouter, FifoScheduler, LeastLoadedRouter, RandomScheduler,
    RecoveryPolicy, ScheduleSession,
};
use bqsched::dbms::{DbmsProfile, ExecutionEngine, ParamSpace, ShardedEngine};
use bqsched::plan::{generate, Benchmark, QueryId, WorkloadSpec};
use bqsched::sched::{gains_from_history, AdaptiveMask, QueryClustering};
use bqsched::wire::{TransportProfile, WireBackend, WireServer};
use proptest::prelude::*;

fn workload_for(benchmark: Benchmark, n: usize) -> bqsched::plan::Workload {
    let w = generate(&WorkloadSpec::new(benchmark, 1.0, 1));
    let n = n.min(w.len()).max(2);
    w.subset(&(0..n).collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_conserves_queries_and_time(seed in 0u64..500, n in 4usize..22) {
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let log = ScheduleSession::builder(&workload)
            .run_on_profile(&profile, seed, &mut RandomScheduler::new(seed));
        // Every query completes exactly once.
        prop_assert_eq!(log.len(), workload.len());
        let mut seen = vec![false; workload.len()];
        for r in &log.records {
            prop_assert!(!seen[r.query.0]);
            seen[r.query.0] = true;
            prop_assert!(r.finished_at > r.started_at);
        }
        // Makespan bounds: at least the longest query, at most the serial sum.
        let longest = log.records.iter().map(|r| r.duration()).fold(0.0, f64::max);
        let serial: f64 = log.records.iter().map(|r| r.duration()).sum();
        prop_assert!(log.makespan() >= longest - 1e-6);
        prop_assert!(log.makespan() <= serial + 1e-6);
    }

    #[test]
    fn scheduling_order_does_not_lose_connections(seed in 0u64..200) {
        let workload = workload_for(Benchmark::TpcH, 22);
        let profile = DbmsProfile::dbms_y();
        let log = ScheduleSession::builder(&workload)
            .run_on_profile(&profile, seed, &mut RandomScheduler::new(seed));
        // No connection index outside the profile's range is ever used.
        for r in &log.records {
            prop_assert!(r.connection < profile.connections);
        }
    }

    #[test]
    fn single_shard_episodes_are_byte_identical_to_the_engine(seed in 0u64..300, n in 4usize..22) {
        // For ANY workload subset and seed, `ShardedEngine` with shards=1 is
        // not just equivalent to the monolithic engine — its episode log is
        // byte for byte the same, through the whole session stack. This pins
        // the global↔shard slot mapping, the clock anchoring and the event
        // merge to "exactly the engine" in the degenerate case.
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let mut engine = ExecutionEngine::new(profile.clone(), &workload, seed);
        let mono = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut engine)
            .run(&mut FifoScheduler::new());
        let mut sharded = ShardedEngine::new(profile, &workload, seed, 1);
        let one = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut sharded)
            .run(&mut FifoScheduler::new());
        prop_assert_eq!(mono.to_json(), one.to_json());
    }

    #[test]
    fn shard_count_never_changes_the_completed_set(seed in 0u64..200, n in 4usize..22) {
        // Scaling the shard count redistributes queries over shards (so
        // timings shift with the new intra-shard mixes), but never the *set*
        // of completed queries: every query completes exactly once at every
        // shard count, with a positive duration — and per shard count the
        // per-query durations are a deterministic function of the seed.
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        for shards in [1usize, 2, 4] {
            let run = || {
                let mut e = ShardedEngine::new(profile.clone(), &workload, seed, shards);
                ScheduleSession::builder(&workload)
                    .round(seed)
                    .build(&mut e)
                    .run(&mut FifoScheduler::new())
            };
            let log = run();
            prop_assert_eq!(log.len(), workload.len(), "{} shards lost queries", shards);
            let mut seen = vec![false; workload.len()];
            for r in &log.records {
                prop_assert!(!seen[r.query.0], "{} shards: duplicate completion", shards);
                seen[r.query.0] = true;
                prop_assert!(r.finished_at > r.started_at);
            }
            prop_assert!(seen.iter().all(|&s| s));
            // Determinism of the per-query durations at this shard count.
            let replay = run();
            for (a, b) in log.records.iter().zip(&replay.records) {
                prop_assert_eq!(a.query, b.query);
                prop_assert_eq!(a.duration(), b.duration());
            }
        }
    }

    #[test]
    fn zero_latency_adapter_is_byte_identical_for_any_subset(seed in 0u64..300, n in 4usize..22) {
        // For ANY workload subset and seed, wrapping the engine in an
        // `AsyncAdapter` with the synchronous dispatch profile (zero
        // admission latency, batch size 1) changes NOTHING: the episode log
        // is byte for byte the wrapped backend's, through the whole session
        // stack. This is the adapter's load-bearing invariant.
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let mut bare = ExecutionEngine::new(profile.clone(), &workload, seed);
        let base = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut bare)
            .run(&mut FifoScheduler::new());
        let mut wrapped = AsyncAdapter::new(
            ExecutionEngine::new(profile, &workload, seed),
            DispatchProfile::synchronous(),
        );
        let adapted = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut wrapped)
            .run(&mut FifoScheduler::new());
        prop_assert_eq!(base.to_json(), adapted.to_json());
    }

    #[test]
    fn zero_latency_adapter_is_byte_identical_on_the_sharded_backend(
        seed in 0u64..100,
        n in 4usize..22,
        shard_idx in 0usize..3,
    ) {
        let shards = [1usize, 2, 4][shard_idx];
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let mut bare = ShardedEngine::new(profile.clone(), &workload, seed, shards);
        let base = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut bare)
            .run(&mut FifoScheduler::new());
        let mut wrapped = AsyncAdapter::new(
            ShardedEngine::new(profile, &workload, seed, shards),
            DispatchProfile::synchronous(),
        );
        let adapted = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut wrapped)
            .run(&mut FifoScheduler::new());
        prop_assert_eq!(base.to_json(), adapted.to_json());
    }

    #[test]
    fn adapter_episodes_are_a_pure_function_of_the_dispatch_profile(
        seed in 0u64..200,
        n in 4usize..22,
        latency_deci in 1u32..30,
        window in 1usize..6,
        batch in 1usize..6,
    ) {
        // For ANY deferred-admission configuration, the episode log is a
        // pure function of (workload, profile, seed, dispatch profile):
        // replays are byte-identical, every query completes exactly once,
        // and nothing starts before one base admission latency has elapsed.
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let base_latency = latency_deci as f64 / 10.0;
        let dispatch = DispatchProfile::fixed(base_latency)
            .with_jitter(0.5)
            .with_max_in_flight(window)
            .with_max_batch(batch)
            .with_seed(seed);
        let run = || {
            let mut adapter = AsyncAdapter::new(
                ExecutionEngine::new(profile.clone(), &workload, seed),
                dispatch,
            );
            ScheduleSession::builder(&workload)
                .round(seed)
                .build(&mut adapter)
                .run(&mut FifoScheduler::new())
        };
        let log = run();
        prop_assert_eq!(log.len(), workload.len());
        let mut seen = vec![false; workload.len()];
        for r in &log.records {
            prop_assert!(!seen[r.query.0], "duplicate completion");
            seen[r.query.0] = true;
            prop_assert!(r.finished_at > r.started_at);
            prop_assert!(
                r.started_at >= base_latency - 1e-9,
                "no query can start before one admission latency"
            );
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(log.to_json(), run().to_json(), "replay must be byte-identical");
    }

    #[test]
    fn zero_latency_wire_is_byte_identical_for_any_subset(seed in 0u64..300, n in 4usize..22) {
        // For ANY workload subset and seed, running the session against the
        // engine THROUGH the framed wire protocol (every call encoded,
        // transmitted, decoded, validated) over the zero-latency transport
        // changes NOTHING: the episode log is byte for byte the bare
        // engine's. This is the wire stack's load-bearing invariant.
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let mut bare = ExecutionEngine::new(profile.clone(), &workload, seed);
        let base = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut bare)
            .run(&mut FifoScheduler::new());
        let mut wired = WireBackend::over_engine(&profile, &workload, seed, TransportProfile::zero());
        let over_wire = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut wired)
            .run(&mut FifoScheduler::new());
        prop_assert_eq!(base.to_json(), over_wire.to_json());
    }

    #[test]
    fn wired_episodes_are_a_pure_function_of_the_transport_profile(
        seed in 0u64..200,
        n in 4usize..22,
        latency_centi in 1u32..50,
        jitter_centi in 0u32..20,
    ) {
        // For ANY latency-injecting transport configuration, the wired
        // episode is a pure function of (workload, profile, seed, transport
        // profile): replays are byte-identical, every query completes
        // exactly once, and nothing starts before one wire transit.
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let base_latency = latency_centi as f64 / 100.0;
        let transport = TransportProfile::fixed(base_latency)
            .with_jitter(jitter_centi as f64 / 100.0)
            .with_seed(seed);
        let run = || {
            let mut wired = WireBackend::over_engine(&profile, &workload, seed, transport);
            ScheduleSession::builder(&workload)
                .round(seed)
                .build(&mut wired)
                .run(&mut FifoScheduler::new())
        };
        let log = run();
        prop_assert_eq!(log.len(), workload.len());
        let mut seen = vec![false; workload.len()];
        for r in &log.records {
            prop_assert!(!seen[r.query.0], "duplicate completion");
            seen[r.query.0] = true;
            prop_assert!(r.finished_at > r.started_at);
            prop_assert!(
                r.started_at >= base_latency - 1e-9,
                "no query can start before one wire transit"
            );
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(log.to_json(), run().to_json(), "replay must be byte-identical");
    }

    #[test]
    fn empty_chaos_schedule_backend_is_byte_identical_for_any_subset(
        seed in 0u64..200,
        n in 4usize..22,
        shard_idx in 0usize..3,
    ) {
        // For ANY workload subset, seed and shard count, decorating the
        // sharded backend with a `ChaosBackend` carrying the EMPTY fault
        // schedule changes NOTHING: the episode log is byte for byte the
        // bare backend's, through the whole session stack. This is the
        // chaos subsystem's load-bearing invariant — fault injection is
        // strictly additive.
        let shards = [1usize, 2, 4][shard_idx];
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let mut bare = ShardedEngine::new(profile.clone(), &workload, seed, shards);
        let base = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut bare)
            .run(&mut FifoScheduler::new());
        let mut chaotic = ChaosBackend::new(
            ShardedEngine::new(profile, &workload, seed, shards),
            &FaultSchedule::empty(),
        );
        let quiet = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut chaotic)
            .run(&mut FifoScheduler::new());
        prop_assert_eq!(base.to_json(), quiet.to_json());
    }

    #[test]
    fn empty_chaos_schedule_transport_is_byte_identical_for_any_subset(
        seed in 0u64..200,
        n in 4usize..22,
    ) {
        // Same invariant one layer down: a `ChaosTransport` carrying the
        // empty schedule over the zero-latency duplex leaves the whole wire
        // stack byte-identical to the bare engine.
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let mut bare = ExecutionEngine::new(profile.clone(), &workload, seed);
        let base = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut bare)
            .run(&mut FifoScheduler::new());
        let transport = ChaosTransport::lossless(&FaultSchedule::empty(), seed);
        let server = WireServer::new(ExecutionEngine::new(profile, &workload, seed));
        let mut wired = WireBackend::connect(server, transport).expect("clean handshake");
        let quiet = ScheduleSession::builder(&workload)
            .round(seed)
            .build(&mut wired)
            .run(&mut FifoScheduler::new());
        prop_assert_eq!(base.to_json(), quiet.to_json());
    }

    #[test]
    fn chaos_episodes_are_a_pure_function_of_the_fault_schedule(
        seed in 0u64..100,
        n in 6usize..22,
        stall_deci in 1u32..6,
        death_deci in 3u32..12,
    ) {
        // For ANY nonzero fault schedule drawn from this family (a bounded
        // stall on shard 0 and a permanent death of shard 1), the recovered
        // episode is a pure function of (workload, seed, schedule): every
        // query still completes exactly once, and the replay — faults,
        // resubmissions and all — is byte-identical.
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let stall_at = stall_deci as f64 / 10.0;
        let schedule = FaultSchedule::from_events(vec![
            FaultSpec::ShardStall {
                shard: 0,
                at: stall_at,
                resume_at: stall_at + 0.2,
            },
            FaultSpec::ShardDeath {
                shard: 1,
                at: death_deci as f64 / 10.0,
            },
        ]);
        let run = || {
            let mut chaotic = ChaosBackend::new(
                ShardedEngine::new(profile.clone(), &workload, seed, 2),
                &schedule,
            );
            ScheduleSession::builder(&workload)
                .round(seed)
                .router(FaultAwareRouter::new(LeastLoadedRouter))
                .recovery(RecoveryPolicy::bounded())
                .build(&mut chaotic)
                .run(&mut FifoScheduler::new())
        };
        let log = run();
        prop_assert_eq!(log.len(), workload.len(), "recovery must complete the episode");
        let mut seen = vec![false; workload.len()];
        for r in &log.records {
            prop_assert!(!seen[r.query.0], "duplicate completion");
            seen[r.query.0] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(log.to_json(), run().to_json(), "replay must be byte-identical");
    }

    #[test]
    fn gain_matrix_is_symmetric_and_finite(rounds in 1u64..4, n in 4usize..16) {
        let workload = workload_for(Benchmark::TpcH, n);
        let profile = DbmsProfile::dbms_x();
        let history = collect_history(&mut FifoScheduler::new(), &workload, &profile, rounds, 3);
        let gains = gains_from_history(&history, workload.len());
        for i in 0..workload.len() {
            for j in 0..workload.len() {
                let a = gains.gain(QueryId(i), QueryId(j));
                let b = gains.gain(QueryId(j), QueryId(i));
                prop_assert!((a - b).abs() < 1e-12);
                prop_assert!(a.is_finite());
            }
        }
    }

    #[test]
    fn adaptive_mask_always_leaves_an_allowed_config(n in 2usize..40) {
        let workload = workload_for(Benchmark::TpcDs, n);
        let space = ParamSpace::full();
        let mask = AdaptiveMask::from_workload(&workload, &space, DbmsProfile::dbms_x().low_mem_grant_pages);
        for i in 0..workload.len() {
            prop_assert!(mask.allowed(QueryId(i)).iter().any(|&a| a), "query {} fully masked", i);
        }
        prop_assert!(mask.masked_fraction() < 1.0);
    }

    #[test]
    fn clustering_is_always_a_partition(n in 4usize..30, k in 1usize..12) {
        let workload = workload_for(Benchmark::TpcDs, n);
        let profile = DbmsProfile::dbms_x();
        let history = collect_history(&mut FifoScheduler::new(), &workload, &profile, 1, 9);
        let gains = gains_from_history(&history, workload.len());
        let clustering = QueryClustering::agglomerative(&gains, k);
        prop_assert!(clustering.num_clusters() <= workload.len());
        prop_assert!(clustering.num_clusters() >= 1);
        let mut seen = vec![false; workload.len()];
        for c in 0..clustering.num_clusters() {
            for q in clustering.members(c) {
                prop_assert!(!seen[q.0]);
                seen[q.0] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
