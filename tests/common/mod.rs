//! Shared helpers for the root-package integration tests: backend
//! construction, session shorthand and the golden-artifact comparator.
//! (Each integration test file compiles separately, so unused helpers are
//! expected per file.)
#![allow(dead_code)]

use bqsched::core::{EpisodeLog, ExecutorBackend, ScheduleSession, SchedulerPolicy};
use bqsched::nn::{ParamStore, Tensor};
use bqsched::plan::Workload;
use bqsched::sched::{SimulatorConfig, SimulatorModel};

/// Run one round through the session facade against any backend.
pub fn session_round<E: ExecutorBackend>(
    policy: &mut dyn SchedulerPolicy,
    workload: &Workload,
    backend: &mut E,
    round: u64,
) -> EpisodeLog {
    ScheduleSession::builder(workload)
        .round(round)
        .build(backend)
        .run(policy)
}

/// Build a learned-simulator backend over an (untrained, deterministic)
/// prediction model. Returns the pieces the simulator borrows.
pub fn simulator_parts(workload: &Workload) -> (SimulatorModel, Tensor, Vec<f64>) {
    let mut store = ParamStore::new();
    let mut rng = bqsched::encoder::seeded_rng(0);
    let enc = bqsched::encoder::PlanEncoder::new(
        &mut store,
        bqsched::encoder::PlanEncoderConfig {
            dim: 16,
            heads: 2,
            blocks: 1,
            tree_bias_per_hop: 0.5,
        },
        &mut rng,
    );
    let embs = enc.embed_workload(&store, workload);
    let config = SimulatorConfig {
        encoder: bqsched::encoder::StateEncoderConfig {
            plan_dim: 16,
            dim: 16,
            heads: 2,
            blocks: 1,
        },
        ..SimulatorConfig::default()
    };
    let model = SimulatorModel::new(16, config, 1);
    let avg = vec![1.0; workload.len()];
    (model, embs, avg)
}

/// Compare `json` against the pinned artifact at `tests/golden/<name>`, or
/// rewrite the artifact when `BLESS=1` is set (deliberate re-pin after an
/// intended behavior change).
pub fn assert_matches_golden(name: &str, json: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, json).expect("write golden log");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("golden log artifact missing");
    assert_eq!(
        json, golden,
        "episode log diverged from the pinned golden artifact {name}; if \
         the behavior change is intended, re-bless with BLESS=1"
    );
}
