//! The reusable `ExecutorBackend` conformance suite.
//!
//! Every execution substrate — the simulated DBMS (`ExecutionEngine`), the
//! learned incremental simulator (`LearnedSimulator`), the sharded
//! multi-engine backend (`ShardedEngine`), the async submission adapter
//! (`AsyncAdapter`, wrapped over each of the three), the wire-protocol
//! backend (`WireBackend`, alone and under the adapter), and the chaos
//! fault-injection decorator (`ChaosBackend`, a drop-in under the empty
//! schedule) — must satisfy the same observable contract, because
//! schedulers are non-intrusive and cannot tell backends apart. The contract, asserted here over every backend
//! through one parametrized harness:
//!
//! 1. **Determinism** — fixed seeds reproduce episode logs byte for byte;
//! 2. **Cancel consistency** — cancelling mid-round frees exactly that slot,
//!    leaves every occupancy view consistent and connection-ordered;
//! 3. **Timeout discipline** — per-query timeouts free each slot exactly
//!    once, land a cancellation exactly on the deadline, and leave no slot
//!    busy after the round;
//! 4. **Ordered running view** — `RunningView` iterates in ascending global
//!    connection order regardless of submission order;
//! 5. **Stall surfacing** — healthy rounds never leave a stall diagnostic
//!    behind.
//!
//! To hold a new backend to the contract, add one `*_passes_conformance`
//! test constructing it fresh per seed — nothing else.

mod common;

use bqsched::adapter::{AsyncAdapter, DispatchProfile};
use bqsched::chaos::{ChaosBackend, FaultSchedule, FaultSpec};
use bqsched::core::{
    ExecutorBackend, FaultAwareRouter, FifoScheduler, LeastLoadedRouter, RecoveryPolicy,
    ScheduleSession,
};
use bqsched::dbms::{DbmsProfile, ExecutionEngine, RunParams, ShardedEngine};
use bqsched::plan::{generate, Benchmark, QueryId, Workload, WorkloadSpec};
use bqsched::sched::LearnedSimulator;
use bqsched::wire::{TransportProfile, WireBackend};

fn tpch() -> Workload {
    generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1))
}

/// Invariant 1: an episode is a pure function of (backend seed, policy) —
/// two rounds on freshly built backends with the same seed produce
/// byte-identical logs (including within-instant completion batches).
fn check_byte_identical_logs<E, F>(name: &str, w: &Workload, fresh: &mut F)
where
    E: ExecutorBackend,
    F: FnMut(u64) -> E,
{
    for seed in [0u64, 3] {
        let run = |backend: &mut E| {
            ScheduleSession::builder(w)
                .round(seed)
                .build(backend)
                .run(&mut FifoScheduler::new())
                .to_json()
        };
        let a = run(&mut fresh(seed));
        let b = run(&mut fresh(seed));
        assert_eq!(a, b, "{name}: seed {seed} did not reproduce its log");
    }
}

/// Invariant 2: cancelling mid-round must leave every occupancy view
/// consistent — the cancelled slot frees (exactly once), no other slot
/// moves, and the running view stays in ascending connection order (the
/// pre-unification engine's internal `swap_remove` reordered its running
/// set; a mis-merged sharded mirror would too).
fn check_cancel_keeps_views_consistent<E: ExecutorBackend>(name: &str, backend: &mut E) {
    let submit = 5usize;
    for q in 0..submit {
        let free = backend.first_free().expect("connection available");
        assert_eq!(free, q, "{name}: fill proceeds in connection order");
        backend.submit(QueryId(q), RunParams::default_config(), free);
    }
    while backend.events_pending() {
        backend.poll_event();
    }
    let victim = submit / 2;
    let c = backend.cancel(victim).expect("victim was running");
    assert_eq!(c.query, QueryId(victim));
    assert_eq!(c.connection, victim);
    assert!(
        backend.cancel(victim).is_none(),
        "{name}: slot must free exactly once"
    );

    assert!(backend.connections()[victim].is_free());
    assert_eq!(backend.first_free(), Some(victim));
    let view: Vec<(usize, usize)> = backend
        .running_view()
        .map(|(q, _, _, conn)| (conn, q.0))
        .collect();
    let expected: Vec<(usize, usize)> = (0..submit)
        .filter(|&q| q != victim)
        .map(|q| (q, q))
        .collect();
    assert_eq!(
        view, expected,
        "{name}: running view must stay connection-ordered"
    );
}

/// Invariant 3: a query cancelled exactly at its per-query deadline frees
/// its slot exactly once — every query completes once (no double-free), at
/// least one cancellation lands exactly on the deadline, no logged duration
/// overshoots it, and no slot stays busy after the round.
fn check_timeout_frees_each_slot_exactly_once<E, F>(name: &str, w: &Workload, fresh: &mut F)
where
    E: ExecutorBackend,
    F: FnMut(u64) -> E,
{
    // Derive a deadline that actually races natural completions: half the
    // longest duration of this backend's own untimed round.
    let natural = common::session_round(&mut FifoScheduler::new(), w, &mut fresh(0), 0);
    let timeout = natural
        .records
        .iter()
        .map(|r| r.duration())
        .fold(0.0, f64::max)
        / 2.0;

    let mut backend = fresh(0);
    let mut counts = vec![0usize; w.len()];
    let log = ScheduleSession::builder(w)
        .query_timeout(timeout)
        .on_completion(|c| counts[c.query.0] += 1)
        .build(&mut backend)
        .run(&mut FifoScheduler::new());
    assert_eq!(log.len(), w.len(), "{name}: every query must complete");
    assert!(
        counts.iter().all(|&n| n == 1),
        "{name}: every slot must free exactly once: {counts:?}"
    );
    assert!(
        log.records
            .iter()
            .any(|r| (r.duration() - timeout).abs() < 1e-6),
        "{name}: at least one cancellation must land exactly on the deadline"
    );
    let overshoot = log.records.iter().map(|r| r.duration()).fold(0.0, f64::max);
    assert!(
        overshoot <= timeout + 1e-6,
        "{name}: duration {overshoot} overshot the {timeout}s deadline"
    );
    assert!(
        backend.connections().iter().all(|s| s.is_free()),
        "{name}: no slot may stay busy after the round"
    );
}

/// Invariant 4: the running view iterates in ascending global connection
/// order no matter in which order the slots were filled.
fn check_running_view_is_connection_ordered<E: ExecutorBackend>(name: &str, backend: &mut E) {
    let conns = backend.connection_count().min(6);
    // Fill high-to-low so an insertion-ordered view would come out reversed.
    for (q, conn) in (0..conns).rev().enumerate() {
        backend.submit(QueryId(q), RunParams::default_config(), conn);
    }
    while backend.events_pending() {
        backend.poll_event();
    }
    let seen: Vec<usize> = backend.running_view().map(|(_, _, _, c)| c).collect();
    let expected: Vec<usize> = (0..conns).collect();
    assert_eq!(
        seen, expected,
        "{name}: running view must iterate global connections in order"
    );
}

/// Invariant 5: a healthy round leaves no stall diagnostic behind (the loud
/// failure on an actual stall is covered by the release-only stall tests).
fn check_healthy_rounds_surface_no_stall<E, F>(name: &str, w: &Workload, fresh: &mut F)
where
    E: ExecutorBackend,
    F: FnMut(u64) -> E,
{
    let mut backend = fresh(11);
    let log = common::session_round(&mut FifoScheduler::new(), w, &mut backend, 11);
    assert_eq!(log.len(), w.len());
    assert!(
        backend.stall_diagnostic().is_none(),
        "{name}: healthy round must not record an advance stall"
    );
}

/// The full conformance suite over one backend family; `fresh(seed)` must
/// build a cold backend for `w` with at least 6 connections.
fn conformance_suite<E, F>(name: &str, w: &Workload, mut fresh: F)
where
    E: ExecutorBackend,
    F: FnMut(u64) -> E,
{
    check_byte_identical_logs(name, w, &mut fresh);
    check_cancel_keeps_views_consistent(name, &mut fresh(7));
    check_timeout_frees_each_slot_exactly_once(name, w, &mut fresh);
    check_running_view_is_connection_ordered(name, &mut fresh(5));
    check_healthy_rounds_surface_no_stall(name, w, &mut fresh);
}

#[test]
fn execution_engine_passes_conformance() {
    let w = tpch();
    conformance_suite("engine", &w, |seed| {
        ExecutionEngine::new(DbmsProfile::dbms_x(), &w, seed)
    });
}

#[test]
fn learned_simulator_passes_conformance() {
    let w = tpch();
    let (model, embs, avg) = common::simulator_parts(&w);
    conformance_suite("simulator", &w, |_seed| {
        LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6)
    });
}

#[test]
fn sharded_engine_passes_conformance() {
    let w = tpch();
    for shards in [1usize, 2, 4] {
        conformance_suite(&format!("sharded{shards}"), &w, |seed| {
            ShardedEngine::new(DbmsProfile::dbms_x(), &w, seed, shards)
        });
    }
}

/// The cells above run 22 queries on 36/72 slots, so every query starts at
/// t=0 and no slot is ever refilled — which is exactly the blind spot that
/// let the ahead-shard cancel/refill bugs slip past invariant 3. This cell
/// shrinks the per-shard connection pool until the workload overflows the
/// sharded slot space, so refills land mid-merge and timeout deadlines are
/// staggered across the cross-shard event merge.
#[test]
fn sharded_engine_passes_conformance_when_refills_race_the_merge() {
    let w = tpch();
    let mut profile = DbmsProfile::dbms_x();
    profile.connections = 4;
    for shards in [2usize, 4] {
        assert!(
            w.len() > shards * profile.connections,
            "cell must overflow the slot space to exercise refills"
        );
        conformance_suite(&format!("sharded{shards}x4"), &w, |seed| {
            ShardedEngine::new(profile.clone(), &w, seed, shards)
        });
    }
}

/// The single-shard deployment is not merely self-consistent: it replays the
/// monolithic engine byte for byte through the whole session stack, so the
/// sharded backend inherits every behavioral pin the engine has.
#[test]
fn sharded_one_is_byte_identical_to_the_engine_on_golden_seeds() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    for seed in [0u64, 5] {
        let mut engine = ExecutionEngine::new(profile.clone(), &w, seed);
        let mono = ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .round(seed)
            .build(&mut engine)
            .run(&mut FifoScheduler::new());
        let mut sharded = ShardedEngine::new(profile.clone(), &w, seed, 1);
        let one = ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .round(seed)
            .build(&mut sharded)
            .run(&mut FifoScheduler::new());
        assert_eq!(mono.to_json(), one.to_json(), "seed {seed}");
    }
}

/// And therefore it also matches the engine's pinned on-disk artifact.
#[test]
fn sharded_one_matches_the_engine_golden_artifact() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    let mut sharded = ShardedEngine::new(profile.clone(), &w, 0, 1);
    let json = ScheduleSession::builder(&w)
        .dbms(profile.kind)
        .round(0)
        .build(&mut sharded)
        .run(&mut FifoScheduler::new())
        .to_json();
    common::assert_matches_golden("engine_fifo_tpch_seed0.json", &json);
}

/// Cross-version pins for the sharded backend itself: fixed (workload,
/// profile, seed, shard count) must keep reproducing the same on-disk log,
/// so refactors of the event merge are checked against fixed artifacts
/// rather than run-vs-run. Re-bless deliberately with `BLESS=1`.
#[test]
fn sharded_logs_match_golden_artifacts() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    for (shards, artifact) in [
        (2usize, "engine_sharded2_tpch_seed0.json"),
        (4usize, "engine_sharded4_tpch_seed0.json"),
    ] {
        let mut sharded = ShardedEngine::new(profile.clone(), &w, 0, shards);
        let json = ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .round(0)
            .build(&mut sharded)
            .run(&mut FifoScheduler::new())
            .to_json();
        common::assert_matches_golden(artifact, &json);
    }
}

// --- The async submission adapter (`bq-adapter`) -------------------------
//
// With the synchronous dispatch profile (zero admission latency, batch
// size 1, unbounded window) the adapter must be a drop-in for the wrapped
// backend — so it runs the full conformance suite over all three backend
// families. Deferred-admission behavior gets its own cells below.

#[test]
fn async_adapter_over_the_engine_passes_conformance() {
    let w = tpch();
    conformance_suite("adapter(engine)", &w, |seed| {
        AsyncAdapter::new(
            ExecutionEngine::new(DbmsProfile::dbms_x(), &w, seed),
            DispatchProfile::synchronous(),
        )
    });
}

#[test]
fn async_adapter_over_the_simulator_passes_conformance() {
    let w = tpch();
    let (model, embs, avg) = common::simulator_parts(&w);
    conformance_suite("adapter(simulator)", &w, |_seed| {
        AsyncAdapter::new(
            LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6),
            DispatchProfile::synchronous(),
        )
    });
}

#[test]
fn async_adapter_over_the_sharded_engine_passes_conformance() {
    let w = tpch();
    for shards in [1usize, 2, 4] {
        conformance_suite(&format!("adapter(sharded{shards})"), &w, |seed| {
            AsyncAdapter::new(
                ShardedEngine::new(DbmsProfile::dbms_x(), &w, seed, shards),
                DispatchProfile::synchronous(),
            )
        });
    }
}

/// The load-bearing invariant of the adapter: with zero admission latency
/// and batch size 1 it is **byte-identical** through the whole session
/// stack to the wrapped backend — for the engine, the learned simulator and
/// the sharded backend at 1/2/4 shards. (The engine and sharded cases are
/// additionally pinned over arbitrary workload subsets in
/// `tests/properties.rs`.)
#[test]
fn zero_latency_adapter_replays_every_backend_byte_for_byte() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    for seed in [0u64, 5] {
        let mut bare = ExecutionEngine::new(profile.clone(), &w, seed);
        let base = common::session_round(&mut FifoScheduler::new(), &w, &mut bare, seed);
        let mut wrapped = AsyncAdapter::new(
            ExecutionEngine::new(profile.clone(), &w, seed),
            DispatchProfile::synchronous(),
        );
        let adapted = common::session_round(&mut FifoScheduler::new(), &w, &mut wrapped, seed);
        assert_eq!(base.to_json(), adapted.to_json(), "engine seed {seed}");

        for shards in [1usize, 2, 4] {
            let mut bare = ShardedEngine::new(profile.clone(), &w, seed, shards);
            let base = common::session_round(&mut FifoScheduler::new(), &w, &mut bare, seed);
            let mut wrapped = AsyncAdapter::new(
                ShardedEngine::new(profile.clone(), &w, seed, shards),
                DispatchProfile::synchronous(),
            );
            let adapted = common::session_round(&mut FifoScheduler::new(), &w, &mut wrapped, seed);
            assert_eq!(
                base.to_json(),
                adapted.to_json(),
                "sharded({shards}) seed {seed}"
            );
        }
    }
    let (model, embs, avg) = common::simulator_parts(&w);
    let mut bare = LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6);
    let base = common::session_round(&mut FifoScheduler::new(), &w, &mut bare, 0);
    let mut wrapped = AsyncAdapter::new(
        LearnedSimulator::new(&model, &w, &embs, avg, 6),
        DispatchProfile::synchronous(),
    );
    let adapted = common::session_round(&mut FifoScheduler::new(), &w, &mut wrapped, 0);
    assert_eq!(base.to_json(), adapted.to_json(), "learned simulator");
}

/// Deferred admission under pressure: a tight in-flight window on a small
/// slot pool, so the workload overflows the slot space, submissions wait in
/// the backpressure queue, and per-query timeouts race admissions that are
/// still in flight. Every query must still complete exactly once, no
/// execution may overrun its deadline (queued time is not execution time),
/// and the whole race must replay byte-identically.
#[test]
fn async_adapter_backpressure_races_timeouts_against_the_admission_queue() {
    let w = tpch();
    let mut profile = DbmsProfile::dbms_x();
    profile.connections = 4;
    assert!(w.len() > profile.connections, "cell must overflow the pool");
    let dispatch = DispatchProfile::fixed(1.5)
        .with_jitter(1.0)
        .with_max_in_flight(2)
        .with_max_batch(2)
        .with_seed(9);
    let fresh =
        |seed: u64| AsyncAdapter::new(ExecutionEngine::new(profile.clone(), &w, seed), dispatch);

    // A deadline that races natural completions: half the longest duration
    // of the adapter's own untimed round.
    let natural = common::session_round(&mut FifoScheduler::new(), &w, &mut fresh(0), 0);
    let timeout = natural
        .records
        .iter()
        .map(|r| r.duration())
        .fold(0.0, f64::max)
        / 2.0;

    let run = |hook: Option<&mut Vec<usize>>| {
        let mut backend = fresh(0);
        let builder = ScheduleSession::builder(&w).query_timeout(timeout);
        let builder = match hook {
            Some(counts) => builder.on_completion(|c| counts[c.query.0] += 1),
            None => builder,
        };
        let log = builder.build(&mut backend).run(&mut FifoScheduler::new());
        assert!(
            backend.connections().iter().all(|s| s.is_free()),
            "no slot may stay occupied after the round"
        );
        assert_eq!(backend.backpressured(), 0);
        assert_eq!(backend.in_flight(), 0);
        log
    };
    let mut counts = vec![0usize; w.len()];
    let log = run(Some(&mut counts));
    assert_eq!(log.len(), w.len(), "every query must complete");
    assert!(
        counts.iter().all(|&n| n == 1),
        "every slot must free exactly once: {counts:?}"
    );
    let overshoot = log.records.iter().map(|r| r.duration()).fold(0.0, f64::max);
    assert!(
        overshoot <= timeout + 1e-6,
        "duration {overshoot} overshot the {timeout}s deadline"
    );
    assert!(
        log.records
            .iter()
            .any(|r| (r.duration() - timeout).abs() < 1e-6),
        "at least one cancellation must land exactly on the deadline"
    );
    // The race is deterministic: an identical replay is byte-identical.
    let replay = run(None);
    assert_eq!(log.to_json(), replay.to_json());
}

// --- The wire-protocol backend (`bq-wire`) --------------------------------
//
// With the zero-latency in-memory transport the wire stack must be a
// drop-in for the hosted backend — every call still round-trips through
// real frame encode/decode, so passing the full conformance suite here
// exercises the codec, the server validation and the client mirror on
// every event of every cell. The fifth backend family: wired engine, wired
// sharded engine, wired learned simulator, and the adapter-over-wire
// composition a real deployment would run (admission latency in front of
// wire latency).

#[test]
fn wire_backend_over_the_engine_passes_conformance() {
    let w = tpch();
    conformance_suite("wire(engine)", &w, |seed| {
        WireBackend::lossless(ExecutionEngine::new(DbmsProfile::dbms_x(), &w, seed))
    });
}

#[test]
fn wire_backend_over_the_sharded_engine_passes_conformance() {
    let w = tpch();
    for shards in [1usize, 2] {
        conformance_suite(&format!("wire(sharded{shards})"), &w, |seed| {
            WireBackend::lossless(ShardedEngine::new(DbmsProfile::dbms_x(), &w, seed, shards))
        });
    }
}

#[test]
fn wire_backend_over_the_simulator_passes_conformance() {
    let w = tpch();
    let (model, embs, avg) = common::simulator_parts(&w);
    conformance_suite("wire(simulator)", &w, |_seed| {
        WireBackend::lossless(LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6))
    });
}

#[test]
fn async_adapter_over_the_wire_backend_passes_conformance() {
    let w = tpch();
    conformance_suite("adapter(wire(engine))", &w, |seed| {
        AsyncAdapter::new(
            WireBackend::lossless(ExecutionEngine::new(DbmsProfile::dbms_x(), &w, seed)),
            DispatchProfile::synchronous(),
        )
    });
}

/// The wired engine is not merely self-consistent: at zero transport
/// latency it replays the engine's pinned on-disk artifact byte for byte,
/// through real serialization of every message.
#[test]
fn wire_backend_matches_the_engine_golden_artifact() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    let mut wired = WireBackend::over_engine(&profile, &w, 0, TransportProfile::zero());
    let json = ScheduleSession::builder(&w)
        .dbms(profile.kind)
        .round(0)
        .build(&mut wired)
        .run(&mut FifoScheduler::new())
        .to_json();
    common::assert_matches_golden("engine_fifo_tpch_seed0.json", &json);
}

/// The deployment shape the wire layer exists for: an `AsyncAdapter`
/// modelling admission latency **over** a `WireBackend` modelling transit
/// latency. The composition must complete every query exactly once and be
/// a pure function of (workload, profile, seed, dispatch profile,
/// transport profile).
#[test]
fn async_adapter_over_a_latency_wire_completes_and_replays() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    let dispatch = DispatchProfile::fixed(0.2)
        .with_jitter(0.1)
        .with_max_in_flight(4)
        .with_max_batch(4)
        .with_seed(3);
    let transport = TransportProfile::fixed(0.05).with_jitter(0.02).with_seed(7);
    let run = || {
        let mut stack = AsyncAdapter::new(
            WireBackend::over_engine(&profile, &w, 1, transport),
            dispatch,
        );
        ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .round(1)
            .build(&mut stack)
            .run(&mut FifoScheduler::new())
    };
    let log = run();
    assert_eq!(log.len(), w.len());
    let mut seen = vec![false; w.len()];
    for r in &log.records {
        assert!(!seen[r.query.0], "duplicate completion for {:?}", r.query);
        seen[r.query.0] = true;
        assert!(r.finished_at > r.started_at);
        assert!(
            r.started_at >= 0.2 + 0.05 - 1e-9,
            "nothing can start before one admission latency plus one wire \
             transit: {}",
            r.started_at
        );
    }
    assert_eq!(log.to_json(), run().to_json(), "replay must be identical");
}

// --- The chaos fault-injection decorator (`bq-chaos`) ---------------------
//
// Under the EMPTY fault schedule the chaos decorator must be a drop-in for
// the wrapped backend — so it runs the full conformance suite over the
// engine and the sharded engine, and replays the engine's pinned golden
// artifact. Under a fixed nonzero schedule the recovered episode must be
// deterministic: replayed twice byte for byte and pinned on disk.

#[test]
fn chaos_backend_with_the_empty_schedule_passes_conformance() {
    let w = tpch();
    conformance_suite("chaos(engine)", &w, |seed| {
        ChaosBackend::new(
            ExecutionEngine::new(DbmsProfile::dbms_x(), &w, seed),
            &FaultSchedule::empty(),
        )
    });
    for shards in [1usize, 2] {
        conformance_suite(&format!("chaos(sharded{shards})"), &w, |seed| {
            ChaosBackend::new(
                ShardedEngine::new(DbmsProfile::dbms_x(), &w, seed, shards),
                &FaultSchedule::empty(),
            )
        });
    }
}

/// The empty-schedule chaos decorator is not merely self-consistent: it
/// replays the engine's pinned on-disk artifact byte for byte through the
/// whole session stack.
#[test]
fn chaos_backend_with_the_empty_schedule_matches_the_engine_golden_artifact() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    let mut chaotic = ChaosBackend::new(
        ExecutionEngine::new(profile.clone(), &w, 0),
        &FaultSchedule::empty(),
    );
    let json = ScheduleSession::builder(&w)
        .dbms(profile.kind)
        .round(0)
        .build(&mut chaotic)
        .run(&mut FifoScheduler::new())
        .to_json();
    common::assert_matches_golden("engine_fifo_tpch_seed0.json", &json);
}

/// A recovered chaos episode — a bounded stall on shard 0 and a permanent
/// death of shard 1, absorbed by the fault-aware router and a bounded
/// recovery policy — is deterministic: two cold runs replay byte for byte,
/// faults and resubmissions included, and the log is pinned against an
/// on-disk golden artifact. Re-bless deliberately with `BLESS=1`.
#[test]
fn chaos_episode_replays_identically_and_matches_golden_artifact() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    let schedule = FaultSchedule::from_events(vec![
        FaultSpec::ShardStall {
            shard: 0,
            at: 0.2,
            resume_at: 0.4,
        },
        FaultSpec::ShardDeath { shard: 1, at: 0.5 },
    ]);
    let run = || {
        let mut chaotic =
            ChaosBackend::new(ShardedEngine::new(profile.clone(), &w, 0, 2), &schedule);
        ScheduleSession::builder(&w)
            .dbms(profile.kind)
            .round(0)
            .router(FaultAwareRouter::new(LeastLoadedRouter))
            .recovery(RecoveryPolicy::bounded())
            .build(&mut chaotic)
            .run(&mut FifoScheduler::new())
    };
    let log = run();
    assert_eq!(log.len(), w.len(), "recovery must complete the episode");
    assert!(log.lost_queries() >= 1, "the death must cost something");
    assert_eq!(
        log.to_json(),
        run().to_json(),
        "a chaos episode must replay byte-identically"
    );
    common::assert_matches_golden("chaos_stall_death_tpch_seed0.json", &log.to_json());
}

// --- The observability layer (`bq-obs`) -----------------------------------
//
// The tracing-never-perturbs contract: attaching a *recording* observability
// handle to any layer of any backend stack must leave the episode log
// byte-identical to the unobserved run — observation reads virtual time and
// identities, and nothing flows back. One cell per backend family, each
// observing both the backend and the session, each also proving the run was
// actually observed (a vacuous pass with an inert handle proves nothing).

use bqsched::obs::Obs;

fn check_recording_obs_never_perturbs<E, F, G>(
    name: &str,
    w: &Workload,
    mut fresh: F,
    mut attach: G,
    backend_counter: &'static str,
) where
    E: ExecutorBackend,
    F: FnMut(u64) -> E,
    G: FnMut(&mut E, Obs),
{
    for seed in [0u64, 3] {
        let plain = {
            let mut backend = fresh(seed);
            ScheduleSession::builder(w)
                .round(seed)
                .build(&mut backend)
                .run(&mut FifoScheduler::new())
                .to_json()
        };
        let obs = Obs::recording();
        let observed = {
            let mut backend = fresh(seed);
            attach(&mut backend, obs.clone());
            ScheduleSession::builder(w)
                .round(seed)
                .obs(obs.clone())
                .build(&mut backend)
                .run(&mut FifoScheduler::new())
                .to_json()
        };
        assert_eq!(
            plain, observed,
            "{name}: recording observability perturbed the episode (seed {seed})"
        );
        assert!(
            obs.counter("session_decisions") > 0,
            "{name}: the session layer must actually have been observed"
        );
        assert!(
            obs.counter(backend_counter) > 0,
            "{name}: the backend layer must actually have been observed \
             ({backend_counter} stayed 0)"
        );
        assert!(
            !obs.trace_jsonl().is_empty(),
            "{name}: the recording sink must have captured events"
        );
    }
}

#[test]
fn recording_observability_never_perturbs_any_backend_family() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    check_recording_obs_never_perturbs(
        "engine",
        &w,
        |seed| ExecutionEngine::new(profile.clone(), &w, seed),
        |b, o| b.set_obs(o),
        "engine_advances",
    );
    check_recording_obs_never_perturbs(
        "sharded2",
        &w,
        |seed| ShardedEngine::new(profile.clone(), &w, seed, 2),
        |b, o| b.set_obs(o),
        "sharded_deliveries",
    );
    check_recording_obs_never_perturbs(
        "adapter(engine)",
        &w,
        |seed| {
            AsyncAdapter::new(
                ExecutionEngine::new(profile.clone(), &w, seed),
                DispatchProfile::fixed(0.2)
                    .with_max_in_flight(2)
                    .with_max_batch(2)
                    .with_seed(seed),
            )
        },
        |b, o| b.set_obs(o),
        "adapter_admissions",
    );
    check_recording_obs_never_perturbs(
        "wire(engine)",
        &w,
        |seed| {
            WireBackend::over_engine(
                &profile,
                &w,
                seed,
                TransportProfile::fixed(0.05).with_seed(seed),
            )
        },
        |b, o| b.set_obs(o),
        "wire_frames_sent",
    );
}

/// The chaos family needs its own cell: a recovered episode requires the
/// fault-aware router and a recovery policy on the session, and the thing
/// worth pinning is that observing the *faulted* path — fault events, lost
/// queries, recovery resubmissions — perturbs nothing either.
#[test]
fn recording_observability_never_perturbs_a_recovered_chaos_episode() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    let schedule = FaultSchedule::from_events(vec![
        FaultSpec::ShardStall {
            shard: 0,
            at: 0.2,
            resume_at: 0.4,
        },
        FaultSpec::ShardDeath { shard: 1, at: 0.5 },
    ]);
    for seed in [0u64, 3] {
        let run = |obs: Option<Obs>| {
            let mut chaotic =
                ChaosBackend::new(ShardedEngine::new(profile.clone(), &w, seed, 2), &schedule);
            let mut builder = ScheduleSession::builder(&w)
                .round(seed)
                .router(FaultAwareRouter::new(LeastLoadedRouter))
                .recovery(RecoveryPolicy::bounded());
            if let Some(obs) = obs {
                chaotic.set_obs(obs.clone());
                builder = builder.obs(obs);
            }
            builder
                .build(&mut chaotic)
                .run(&mut FifoScheduler::new())
                .to_json()
        };
        let obs = Obs::recording();
        assert_eq!(
            run(None),
            run(Some(obs.clone())),
            "chaos: recording observability perturbed the episode (seed {seed})"
        );
        assert!(
            obs.counter("chaos_shard_died") >= 1,
            "the observed run must have seen the death"
        );
        assert!(
            obs.counter("session_queries_lost") >= 1
                && obs.histogram("session_recovery_latency").is_some(),
            "the recovery path must have been observed"
        );
    }
}

/// The canonical trace artifact — one recording FIFO episode over the plain
/// engine on TPC-H seed 0, the exact JSONL `--trace-out` dumps — is a pure
/// function of the episode: two cold recordings are byte-identical, and the
/// artifact is pinned on disk. Re-bless deliberately with `BLESS=1`.
#[test]
fn golden_trace_artifact_replays_identically() {
    let w = tpch();
    let first = bq_bench::trace_artifact();
    let second = bq_bench::trace_artifact();
    assert_eq!(
        first, second,
        "the trace artifact must replay byte-identically"
    );
    // At minimum one decision and one completion event per query, plus
    // engine advances — and every line is a self-contained JSON object.
    assert!(first.lines().count() >= 2 * w.len());
    assert!(first.lines().all(|l| l.starts_with("{\"kind\":\"")));
    assert!(first.lines().any(|l| l.contains("\"kind\":\"decision\"")));
    assert!(first
        .lines()
        .any(|l| l.contains("\"kind\":\"completion_delivered\"")));
    common::assert_matches_golden("trace_engine_tpch_seed0.jsonl", &first);
}

/// Cross-version pin for a nonzero-latency adapter configuration: fixed
/// (workload, profile, seed, dispatch profile) must keep reproducing the
/// same on-disk log. Re-bless deliberately with `BLESS=1`.
#[test]
fn async_adapter_log_matches_golden_artifact() {
    let w = tpch();
    let profile = DbmsProfile::dbms_x();
    let dispatch = DispatchProfile::fixed(0.5)
        .with_jitter(0.25)
        .with_max_in_flight(8)
        .with_max_batch(4)
        .with_seed(1);
    let mut adapter = AsyncAdapter::new(ExecutionEngine::new(profile.clone(), &w, 0), dispatch);
    let json = ScheduleSession::builder(&w)
        .dbms(profile.kind)
        .round(0)
        .build(&mut adapter)
        .run(&mut FifoScheduler::new())
        .to_json();
    common::assert_matches_golden("engine_async_tpch_seed0.json", &json);
}
