//! Cross-crate integration tests: full scheduling episodes, strategy
//! orderings, and the pre-train / fine-tune pipeline, exercised through the
//! public API of the umbrella crate.

use bqsched::core::{
    collect_history, evaluate_strategy, FifoScheduler, GanttChart, McfScheduler, RandomScheduler,
    ScheduleSession, SchedulerPolicy,
};
use bqsched::dbms::{DbmsProfile, MemoryGrant, RunParams};
use bqsched::encoder::{PlanEncoderConfig, StateEncoderConfig};
use bqsched::plan::{generate, perturb_query_set, Benchmark, QueryId, WorkloadSpec};
use bqsched::sched::{
    samples_from_history, train_on_dbms, Algorithm, BqSchedAgent, BqSchedConfig, SimulatorConfig,
    SimulatorModel, TrainingConfig,
};

fn small_agent_config() -> BqSchedConfig {
    BqSchedConfig {
        plan_encoder: PlanEncoderConfig {
            dim: 16,
            heads: 2,
            blocks: 1,
            tree_bias_per_hop: 0.5,
        },
        state_encoder: StateEncoderConfig {
            plan_dim: 16,
            dim: 16,
            heads: 2,
            blocks: 1,
        },
        plan_pretrain_epochs: 0,
        ..BqSchedConfig::default()
    }
}

#[test]
fn every_strategy_completes_a_tpch_round_on_every_dbms() {
    let workload = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    for profile in DbmsProfile::all() {
        for policy in [
            Box::new(RandomScheduler::new(0)) as Box<dyn bqsched::core::SchedulerPolicy>,
            Box::new(FifoScheduler::new()),
            Box::new(McfScheduler::new()),
        ]
        .iter_mut()
        {
            let log =
                ScheduleSession::builder(&workload).run_on_profile(&profile, 1, policy.as_mut());
            assert_eq!(
                log.len(),
                workload.len(),
                "{} on {}",
                policy.name(),
                profile.kind.name()
            );
            assert!(log.makespan() > 0.0);
        }
    }
}

#[test]
fn makespan_is_bounded_by_serial_execution() {
    // The concurrent makespan must not exceed the sum of individual durations
    // (which is what a single connection would take), and must be at least the
    // longest single query.
    let workload = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let log =
        ScheduleSession::builder(&workload).run_on_profile(&profile, 3, &mut FifoScheduler::new());
    let longest = log.records.iter().map(|r| r.duration()).fold(0.0, f64::max);
    let serial_sum: f64 = log.records.iter().map(|r| r.duration()).sum();
    assert!(log.makespan() >= longest - 1e-6);
    assert!(log.makespan() <= serial_sum + 1e-6);
}

#[test]
fn mcf_with_history_beats_random_on_tpcds() {
    let workload = generate(&WorkloadSpec::new(Benchmark::TpcDs, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let history = collect_history(&mut FifoScheduler::new(), &workload, &profile, 2, 0);
    let costs: Vec<f64> = (0..workload.len())
        .map(|i| history.avg_exec_time(QueryId(i)).unwrap_or(0.0))
        .collect();
    let random = evaluate_strategy(
        &mut RandomScheduler::new(9),
        &workload,
        &profile,
        Some(&history),
        3,
        500,
    );
    let mcf = evaluate_strategy(
        &mut McfScheduler::with_costs(costs),
        &workload,
        &profile,
        Some(&history),
        3,
        500,
    );
    assert!(
        mcf.mean_makespan < random.mean_makespan,
        "MCF ({}) should beat Random ({})",
        mcf.mean_makespan,
        random.mean_makespan
    );
}

#[test]
fn bqsched_agent_runs_untrained_and_after_training() {
    let workload = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let history = collect_history(&mut FifoScheduler::new(), &workload, &profile, 2, 0);
    let mut agent = BqSchedAgent::new(&workload, &profile, Some(&history), small_agent_config());

    // Untrained greedy episode completes.
    agent.explore = false;
    let log = ScheduleSession::builder(&workload)
        .history(&history)
        .run_on_profile(&profile, 0, &mut agent);
    assert_eq!(log.len(), workload.len());

    // A short training run completes and the agent still schedules correctly.
    let tc = TrainingConfig {
        iterations: 1,
        ppo_iters: 1,
        rounds_per_iter: 1,
        eval_rounds: 1,
        seed: 10,
    };
    let curve = train_on_dbms(&mut agent, &workload, &profile, Some(&history), &tc);
    assert!(curve.total_episodes >= 1);
    agent.explore = false;
    let log2 = ScheduleSession::builder(&workload)
        .history(&history)
        .run_on_profile(&profile, 1, &mut agent);
    assert_eq!(log2.len(), workload.len());
    // All submitted parameter configurations are valid members of the space.
    for r in &log2.records {
        assert!(r.params.workers == 1 || r.params.workers == 2 || r.params.workers == 4);
        assert!(matches!(
            r.params.memory,
            MemoryGrant::Low | MemoryGrant::High
        ));
    }
}

#[test]
fn lsched_and_bqsched_share_the_framework_but_differ_in_configuration() {
    let workload = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let bq = BqSchedAgent::new(&workload, &profile, None, small_agent_config());
    let ls = BqSchedAgent::new(
        &workload,
        &profile,
        None,
        BqSchedConfig {
            use_masking: false,
            algorithm: Algorithm::Ppo,
            ..small_agent_config()
        },
    );
    assert_eq!(bq.name(), "BQSched");
    assert_eq!(ls.name(), "LSched");
    assert!(bq.adaptive_mask().masked_fraction() > 0.0);
    assert_eq!(ls.adaptive_mask().masked_fraction(), 0.0);
}

#[test]
fn simulator_pipeline_produces_consistent_episodes() {
    let workload = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let history = collect_history(&mut FifoScheduler::new(), &workload, &profile, 2, 0);
    let agent = BqSchedAgent::new(&workload, &profile, Some(&history), small_agent_config());
    let sim_config = SimulatorConfig {
        encoder: StateEncoderConfig {
            plan_dim: agent.plan_embeddings().cols(),
            dim: 16,
            heads: 2,
            blocks: 1,
        },
        ..SimulatorConfig::default()
    };
    let samples = samples_from_history(&workload, &history, agent.plan_embeddings(), &sim_config);
    assert!(!samples.is_empty());
    let mut sim = SimulatorModel::new(agent.plan_embeddings().cols(), sim_config, 0);
    let metrics = sim.train(&samples[..samples.len().min(40)], 3, 0.01);
    assert!(metrics.mse.is_finite());
}

#[test]
fn perturbed_workloads_still_schedule_correctly() {
    let workload = generate(&WorkloadSpec::new(Benchmark::TpcDs, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    for factor in [0.8, 1.2] {
        let perturbed = perturb_query_set(&workload, factor, 1);
        let log = ScheduleSession::builder(&perturbed).run_on_profile(
            &profile,
            0,
            &mut FifoScheduler::new(),
        );
        assert_eq!(log.len(), perturbed.len());
    }
}

#[test]
fn gantt_chart_covers_every_connection_used() {
    let workload = generate(&WorkloadSpec::new(Benchmark::TpcDs, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let log =
        ScheduleSession::builder(&workload).run_on_profile(&profile, 0, &mut FifoScheduler::new());
    let chart = GanttChart::from_log(&log);
    assert_eq!(chart.used_connections(), profile.connections);
    assert!(
        chart.utilisation() > 0.3,
        "utilisation {}",
        chart.utilisation()
    );
    let total_bars: usize = chart.rows.iter().map(Vec::len).sum();
    assert_eq!(total_bars, workload.len());
}

#[test]
fn default_run_params_are_conservative() {
    let p = RunParams::default_config();
    assert_eq!(p.workers, 1);
    assert_eq!(p.memory, MemoryGrant::Low);
}
