//! Backend-generic contract tests for the `ScheduleSession` API: saturation
//! and completeness invariants for arbitrary seeds, golden-artifact pins for
//! the monolithic backends, and the loud-failure paths for advance stalls.
//!
//! The per-backend conformance contract (byte-identical logs, cancel-mid-
//! round view consistency, timeout slot accounting, ordered running views,
//! stall surfacing) lives in `tests/backend_conformance.rs`, which runs the
//! same parametrized harness over every `ExecutorBackend`.

mod common;

use bqsched::core::{EpisodeLog, FifoScheduler, RandomScheduler, ScheduleSession};
use bqsched::dbms::{DbmsProfile, ExecutionEngine, ShardedEngine};
use bqsched::plan::{generate, Benchmark, Workload, WorkloadSpec};
use bqsched::sched::LearnedSimulator;
use proptest::prelude::*;

use common::{session_round, simulator_parts};

/// Check the two session invariants on a finished log:
/// 1. every query completes exactly once;
/// 2. between any two consecutive events, all `|C|` connections are busy
///    while enough queries remain (work-conserving saturation).
fn assert_session_invariants(log: &EpisodeLog, workload: &Workload, connections: usize) {
    assert_eq!(log.len(), workload.len(), "every query must complete");
    let mut seen = vec![false; workload.len()];
    for r in &log.records {
        assert!(!seen[r.query.0], "query {:?} completed twice", r.query);
        seen[r.query.0] = true;
        assert!(r.finished_at > r.started_at, "durations must be positive");
    }
    assert!(
        seen.iter().all(|&s| s),
        "every query must appear in the log"
    );

    // Saturation: probe the midpoint of every inter-event interval.
    let mut events: Vec<f64> = log
        .records
        .iter()
        .flat_map(|r| [r.started_at, r.finished_at])
        .collect();
    events.sort_by(|a, b| a.partial_cmp(b).unwrap());
    events.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let n = workload.len();
    for pair in events.windows(2) {
        let t = (pair[0] + pair[1]) / 2.0;
        let running = log
            .records
            .iter()
            .filter(|r| r.started_at <= t && t < r.finished_at)
            .count();
        let finished = log.records.iter().filter(|r| r.finished_at <= t).count();
        let expected = connections.min(n - finished);
        assert_eq!(
            running, expected,
            "at t={t:.4} only {running}/{expected} connections were busy \
             ({finished}/{n} finished)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_sessions_saturate_and_complete(seed in 0u64..200, n in 6usize..22) {
        let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
        let w = w.subset(&(0..n.min(w.len())).collect::<Vec<_>>());
        let profile = DbmsProfile::dbms_x();
        let mut engine = ExecutionEngine::new(profile.clone(), &w, seed);
        let log = session_round(&mut RandomScheduler::new(seed), &w, &mut engine, seed);
        assert_session_invariants(&log, &w, profile.connections);
    }

    #[test]
    fn sharded_sessions_saturate_and_complete(seed in 0u64..100, shards in 1usize..4) {
        // The sharded backend obeys the same work-conserving saturation law
        // over its *global* slot space: while queries pend, every one of the
        // shards × per-shard connections is busy.
        let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
        let profile = DbmsProfile::dbms_x();
        let total = profile.connections * shards;
        let mut engine = ShardedEngine::new(profile, &w, seed, shards);
        let log = session_round(&mut RandomScheduler::new(seed), &w, &mut engine, seed);
        assert_session_invariants(&log, &w, total);
    }
}

#[test]
fn simulator_sessions_saturate_and_complete() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let (model, embs, avg) = simulator_parts(&w);
    for connections in [4usize, 8] {
        let mut sim = LearnedSimulator::new(&model, &w, &embs, avg.clone(), connections);
        let log = session_round(&mut FifoScheduler::new(), &w, &mut sim, 0);
        assert_session_invariants(&log, &w, connections);
    }
}

#[test]
fn engine_log_matches_golden_artifact_for_seed_zero() {
    // Pins the episode log against a fixed on-disk artifact, so a refactor
    // that changes behavior (not just determinism) fails here. The artifact
    // was verified byte-identical to the pre-unification engine's output
    // (PR 1, seeds 0/3/11/40 and more), so it carries the cross-version
    // contract forward.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let mut engine = ExecutionEngine::new(profile.clone(), &w, 0);
    let json = ScheduleSession::builder(&w)
        .dbms(profile.kind)
        .round(0)
        .build(&mut engine)
        .run(&mut FifoScheduler::new())
        .to_json();
    common::assert_matches_golden("engine_fifo_tpch_seed0.json", &json);
}

#[test]
fn simulator_log_matches_golden_artifact() {
    // Same cross-version pin for the learned simulator: its episode log for
    // a fixed (untrained, deterministic) model must match the on-disk
    // artifact, so refactors of its advance/cancel paths are checked against
    // a fixed log rather than run-vs-run.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let (model, embs, avg) = simulator_parts(&w);
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg, 6);
    let json = ScheduleSession::builder(&w)
        .dbms(bqsched::dbms::DbmsKind::X)
        .round(5)
        .build(&mut sim)
        .run(&mut FifoScheduler::new())
        .to_json();
    common::assert_matches_golden("simulator_fifo_tpch.json", &json);
}

// Release-only: in debug the engine debug_asserts at the stall site before
// the session-level check can observe the diagnostic. CI runs this via the
// dedicated `cargo test --release` stall step.
#[cfg(not(debug_assertions))]
#[test]
#[should_panic(expected = "stalled mid-round")]
fn session_fails_loudly_when_the_backend_stalls() {
    // An exhausted advance budget records a stall diagnostic on the engine;
    // the session must surface it (via `ExecutorBackend::stall_diagnostic`)
    // instead of logging partially-advanced state as a healthy round.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let mut profile = DbmsProfile::dbms_x();
    profile.cpu_units_per_sec = 1e-9;
    let mut engine = ExecutionEngine::new(profile, &w, 0);
    engine.force_advance_budget(1);
    ScheduleSession::builder(&w)
        .build(&mut engine)
        .run(&mut FifoScheduler::new());
}

// Release-only for the same reason as above.
#[cfg(not(debug_assertions))]
#[test]
#[should_panic(expected = "stalled mid-round")]
fn session_fails_loudly_when_a_stall_precedes_the_final_completion() {
    // The escape path: a timeout-bounded advance stalls on a phase boundary,
    // then poll_event's fresh-budget advance completes the last query, so
    // the round reaches finished == n with the stall recorded. The session
    // must still refuse to return the partially-advanced log.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let w = w.subset(&[0]);
    let mut engine = ExecutionEngine::new(DbmsProfile::dbms_x(), &w, 0);
    engine.force_advance_budget(1);
    ScheduleSession::builder(&w)
        .query_timeout(1e6)
        .build(&mut engine)
        .run(&mut FifoScheduler::new());
}

// Release-only for the same reason as above: the sharded backend aggregates
// per-shard stalls and the session must fail the round just as loudly.
#[cfg(not(debug_assertions))]
#[test]
#[should_panic(expected = "stalled mid-round")]
fn session_fails_loudly_when_a_shard_stalls() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let mut profile = DbmsProfile::dbms_x();
    profile.cpu_units_per_sec = 1e-9;
    let mut engine = ShardedEngine::new(profile, &w, 0, 2);
    engine.force_advance_budget(1);
    ScheduleSession::builder(&w)
        .build(&mut engine)
        .run(&mut FifoScheduler::new());
}

#[test]
fn simulator_timeouts_respect_predicted_completions() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let (model, embs, avg) = simulator_parts(&w);

    // Baseline: natural (predicted) completions, no timeout.
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6);
    let natural = session_round(&mut FifoScheduler::new(), &w, &mut sim, 0);
    let max_natural = natural
        .records
        .iter()
        .map(|r| r.duration())
        .fold(0.0, f64::max);

    // A timeout far beyond every predicted duration must not change the
    // episode: the simulator still completes queries via its predictions
    // instead of cancelling everything at the deadline.
    let generous = max_natural * 100.0;
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6);
    let log = ScheduleSession::builder(&w)
        .round(0)
        .query_timeout(generous)
        .build(&mut sim)
        .run(&mut FifoScheduler::new());
    assert_eq!(natural.to_json(), log.to_json());

    // A tight timeout clips at the deadline, and every duration respects it.
    let tight = max_natural / 2.0;
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg, 6);
    let log = ScheduleSession::builder(&w)
        .round(0)
        .query_timeout(tight)
        .build(&mut sim)
        .run(&mut FifoScheduler::new());
    assert_eq!(log.len(), w.len());
    let max_timed = log.records.iter().map(|r| r.duration()).fold(0.0, f64::max);
    assert!(
        max_timed <= tight + 1e-6,
        "simulator duration {max_timed} overshot the {tight}s timeout"
    );
}

#[test]
fn random_policy_is_reproducible_across_backends_per_seed() {
    // Same seed, same backend type => identical logs; the session introduces
    // no hidden nondeterminism.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcDs, 1.0, 1));
    let profile = DbmsProfile::dbms_y();
    let run = |seed: u64| {
        let mut engine = ExecutionEngine::new(profile.clone(), &w, seed);
        session_round(&mut RandomScheduler::new(seed), &w, &mut engine, seed).to_json()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn query_ids_stay_in_range_for_all_backends() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let mut engine = ExecutionEngine::new(profile.clone(), &w, 2);
    let log = session_round(&mut FifoScheduler::new(), &w, &mut engine, 2);
    for r in &log.records {
        assert!(r.query.0 < w.len());
        assert!(r.connection < profile.connections);
    }

    let (model, embs, avg) = simulator_parts(&w);
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg, 5);
    let log = session_round(&mut FifoScheduler::new(), &w, &mut sim, 2);
    for r in &log.records {
        assert!(r.query.0 < w.len());
        assert!(r.connection < 5, "simulator connection out of range");
    }

    let mut sharded = ShardedEngine::new(profile.clone(), &w, 2, 3);
    let log = session_round(&mut FifoScheduler::new(), &w, &mut sharded, 2);
    for r in &log.records {
        assert!(r.query.0 < w.len());
        assert!(
            r.connection < profile.connections * 3,
            "sharded connection out of global range"
        );
    }
}
