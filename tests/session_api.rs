//! Backend-generic contract tests for the `ScheduleSession` API: the same
//! invariants must hold whether the session drives the simulated DBMS
//! (`ExecutionEngine`) or the learned incremental simulator
//! (`LearnedSimulator`). Fixed seeds must reproduce episode logs byte for
//! byte, and the unified occupancy views (the `ConnectionSlot` slice plus
//! everything derived from it) must stay consistent across mid-round
//! cancellations and timeouts on both backends.

use bqsched::core::{
    EpisodeLog, ExecutorBackend, FifoScheduler, RandomScheduler, ScheduleSession, SchedulerPolicy,
};
use bqsched::dbms::{DbmsProfile, ExecutionEngine};
use bqsched::nn::{ParamStore, Tensor};
use bqsched::plan::{generate, Benchmark, Workload, WorkloadSpec};
use bqsched::sched::{LearnedSimulator, SimulatorConfig, SimulatorModel};
use proptest::prelude::*;

/// Run one round through the session facade against any backend.
fn session_round<E: ExecutorBackend>(
    policy: &mut dyn SchedulerPolicy,
    workload: &Workload,
    backend: &mut E,
    round: u64,
) -> EpisodeLog {
    ScheduleSession::builder(workload)
        .round(round)
        .build(backend)
        .run(policy)
}

/// Check the two session invariants on a finished log:
/// 1. every query completes exactly once;
/// 2. between any two consecutive events, all `|C|` connections are busy
///    while enough queries remain (work-conserving saturation).
fn assert_session_invariants(log: &EpisodeLog, workload: &Workload, connections: usize) {
    assert_eq!(log.len(), workload.len(), "every query must complete");
    let mut seen = vec![false; workload.len()];
    for r in &log.records {
        assert!(!seen[r.query.0], "query {:?} completed twice", r.query);
        seen[r.query.0] = true;
        assert!(r.finished_at > r.started_at, "durations must be positive");
    }
    assert!(
        seen.iter().all(|&s| s),
        "every query must appear in the log"
    );

    // Saturation: probe the midpoint of every inter-event interval.
    let mut events: Vec<f64> = log
        .records
        .iter()
        .flat_map(|r| [r.started_at, r.finished_at])
        .collect();
    events.sort_by(|a, b| a.partial_cmp(b).unwrap());
    events.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let n = workload.len();
    for pair in events.windows(2) {
        let t = (pair[0] + pair[1]) / 2.0;
        let running = log
            .records
            .iter()
            .filter(|r| r.started_at <= t && t < r.finished_at)
            .count();
        let finished = log.records.iter().filter(|r| r.finished_at <= t).count();
        let expected = connections.min(n - finished);
        assert_eq!(
            running, expected,
            "at t={t:.4} only {running}/{expected} connections were busy \
             ({finished}/{n} finished)"
        );
    }
}

/// Build a learned-simulator backend over an (untrained, deterministic)
/// prediction model. Returns the pieces the simulator borrows.
fn simulator_parts(workload: &Workload) -> (SimulatorModel, Tensor, Vec<f64>) {
    let mut store = ParamStore::new();
    let mut rng = bqsched::encoder::seeded_rng(0);
    let enc = bqsched::encoder::PlanEncoder::new(
        &mut store,
        bqsched::encoder::PlanEncoderConfig {
            dim: 16,
            heads: 2,
            blocks: 1,
            tree_bias_per_hop: 0.5,
        },
        &mut rng,
    );
    let embs = enc.embed_workload(&store, workload);
    let config = SimulatorConfig {
        encoder: bqsched::encoder::StateEncoderConfig {
            plan_dim: 16,
            dim: 16,
            heads: 2,
            blocks: 1,
        },
        ..SimulatorConfig::default()
    };
    let model = SimulatorModel::new(16, config, 1);
    let avg = vec![1.0; workload.len()];
    (model, embs, avg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_sessions_saturate_and_complete(seed in 0u64..200, n in 6usize..22) {
        let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
        let w = w.subset(&(0..n.min(w.len())).collect::<Vec<_>>());
        let profile = DbmsProfile::dbms_x();
        let mut engine = ExecutionEngine::new(profile.clone(), &w, seed);
        let log = session_round(&mut RandomScheduler::new(seed), &w, &mut engine, seed);
        assert_session_invariants(&log, &w, profile.connections);
    }
}

#[test]
fn simulator_sessions_saturate_and_complete() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let (model, embs, avg) = simulator_parts(&w);
    for connections in [4usize, 8] {
        let mut sim = LearnedSimulator::new(&model, &w, &embs, avg.clone(), connections);
        let log = session_round(&mut FifoScheduler::new(), &w, &mut sim, 0);
        assert_session_invariants(&log, &w, connections);
    }
}

#[test]
fn engine_logs_are_byte_identical_for_fixed_seeds() {
    // The byte-identity oracle: an episode is a pure function of (workload,
    // profile, seed, policy). Pins that the unified occupancy refactor keeps
    // the engine deterministic, including within-instant completion batches.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    for seed in [0u64, 3, 11, 40] {
        let run = || {
            let mut engine = ExecutionEngine::new(profile.clone(), &w, seed);
            ScheduleSession::builder(&w)
                .dbms(profile.kind)
                .round(seed)
                .build(&mut engine)
                .run(&mut FifoScheduler::new())
                .to_json()
        };
        assert_eq!(run(), run(), "engine seed {seed}");
    }
}

/// Compare `json` against the pinned artifact at `tests/golden/<name>`, or
/// rewrite the artifact when `BLESS=1` is set (deliberate re-pin after an
/// intended behavior change).
fn assert_matches_golden(name: &str, json: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, json).expect("write golden log");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("golden log artifact missing");
    assert_eq!(
        json, golden,
        "episode log diverged from the pinned golden artifact {name}; if \
         the behavior change is intended, re-bless with BLESS=1"
    );
}

#[test]
fn engine_log_matches_golden_artifact_for_seed_zero() {
    // Unlike the run() == run() identity tests above, this pins the episode
    // log against a fixed on-disk artifact, so a refactor that changes
    // behavior (not just determinism) fails here. The artifact was verified
    // byte-identical to the pre-unification engine's output (PR 1, seeds
    // 0/3/11/40 and more), so it carries the cross-version contract forward.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let mut engine = ExecutionEngine::new(profile.clone(), &w, 0);
    let json = ScheduleSession::builder(&w)
        .dbms(profile.kind)
        .round(0)
        .build(&mut engine)
        .run(&mut FifoScheduler::new())
        .to_json();
    assert_matches_golden("engine_fifo_tpch_seed0.json", &json);
}

#[test]
fn simulator_logs_are_byte_identical_for_fixed_seeds() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let (model, embs, avg) = simulator_parts(&w);
    let run = || {
        let mut sim = LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6);
        ScheduleSession::builder(&w)
            .dbms(bqsched::dbms::DbmsKind::X)
            .round(5)
            .build(&mut sim)
            .run(&mut FifoScheduler::new())
            .to_json()
    };
    assert_eq!(run(), run());
}

#[test]
fn simulator_log_matches_golden_artifact() {
    // Same cross-version pin as the engine golden test: the learned
    // simulator's episode log for a fixed (untrained, deterministic) model
    // must match the on-disk artifact, so refactors of its advance/cancel
    // paths are checked against a fixed log rather than run-vs-run.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let (model, embs, avg) = simulator_parts(&w);
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg, 6);
    let json = ScheduleSession::builder(&w)
        .dbms(bqsched::dbms::DbmsKind::X)
        .round(5)
        .build(&mut sim)
        .run(&mut FifoScheduler::new())
        .to_json();
    assert_matches_golden("simulator_fifo_tpch.json", &json);
}

// Release-only: in debug the engine debug_asserts at the stall site before
// the session-level check can observe the diagnostic. CI runs this via the
// dedicated `cargo test --release` stall step.
#[cfg(not(debug_assertions))]
#[test]
#[should_panic(expected = "stalled mid-round")]
fn session_fails_loudly_when_the_backend_stalls() {
    // An exhausted advance budget records a stall diagnostic on the engine;
    // the session must surface it (via `ExecutorBackend::stall_diagnostic`)
    // instead of logging partially-advanced state as a healthy round.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let mut profile = DbmsProfile::dbms_x();
    profile.cpu_units_per_sec = 1e-9;
    let mut engine = ExecutionEngine::new(profile, &w, 0);
    engine.force_advance_budget(1);
    ScheduleSession::builder(&w)
        .build(&mut engine)
        .run(&mut FifoScheduler::new());
}

// Release-only for the same reason as above.
#[cfg(not(debug_assertions))]
#[test]
#[should_panic(expected = "stalled mid-round")]
fn session_fails_loudly_when_a_stall_precedes_the_final_completion() {
    // The escape path: a timeout-bounded advance stalls on a phase boundary,
    // then poll_event's fresh-budget advance completes the last query, so
    // the round reaches finished == n with the stall recorded. The session
    // must still refuse to return the partially-advanced log.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let w = w.subset(&[0]);
    let mut engine = ExecutionEngine::new(DbmsProfile::dbms_x(), &w, 0);
    engine.force_advance_budget(1);
    ScheduleSession::builder(&w)
        .query_timeout(1e6)
        .build(&mut engine)
        .run(&mut FifoScheduler::new());
}

/// Satellite regression: cancelling mid-round must leave every occupancy
/// view consistent — the cancelled slot frees, no other slot moves, and the
/// running view stays in ascending connection order (the old engine's
/// internal `swap_remove` reordered its running set).
fn assert_cancel_keeps_views_consistent(backend: &mut dyn ExecutorBackend, submit: usize) {
    use bqsched::dbms::RunParams;
    for q in 0..submit {
        let free = backend.first_free().expect("connection available");
        assert_eq!(free, q, "fill proceeds in connection order");
        backend.submit(bqsched::plan::QueryId(q), RunParams::default_config(), free);
    }
    while backend.events_pending() {
        backend.poll_event();
    }
    let victim = submit / 2;
    let c = backend.cancel(victim).expect("victim was running");
    assert_eq!(c.query, bqsched::plan::QueryId(victim));
    assert_eq!(c.connection, victim);
    assert!(
        backend.cancel(victim).is_none(),
        "slot must free exactly once"
    );

    assert!(backend.connections()[victim].is_free());
    assert_eq!(backend.first_free(), Some(victim));
    let view: Vec<(usize, usize)> = backend
        .running_view()
        .map(|(q, _, _, conn)| (conn, q.0))
        .collect();
    let expected: Vec<(usize, usize)> = (0..submit)
        .filter(|&q| q != victim)
        .map(|q| (q, q))
        .collect();
    assert_eq!(view, expected, "running view must stay connection-ordered");
}

#[test]
fn cancel_mid_round_keeps_views_consistent_on_both_backends() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let mut engine = ExecutionEngine::new(DbmsProfile::dbms_x(), &w, 7);
    assert_cancel_keeps_views_consistent(&mut engine, 5);

    let (model, embs, avg) = simulator_parts(&w);
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg, 6);
    assert_cancel_keeps_views_consistent(&mut sim, 5);
}

/// Satellite regression: a query cancelled exactly at its per-query deadline
/// frees its slot exactly once — every query completes once (no double-free)
/// and no slot stays busy after the round (no leak) — on both backends.
fn assert_timeout_frees_each_slot_exactly_once<E: ExecutorBackend>(
    backend: &mut E,
    w: &Workload,
    timeout: f64,
) {
    let mut counts = vec![0usize; w.len()];
    let log = ScheduleSession::builder(w)
        .query_timeout(timeout)
        .on_completion(|c| counts[c.query.0] += 1)
        .build(backend)
        .run(&mut FifoScheduler::new());
    assert_eq!(log.len(), w.len());
    assert!(
        counts.iter().all(|&n| n == 1),
        "every slot must free exactly once: {counts:?}"
    );
    assert!(
        log.records
            .iter()
            .any(|r| (r.duration() - timeout).abs() < 1e-6),
        "at least one cancellation must land exactly on the deadline"
    );
    assert!(
        backend.connections().iter().all(|s| s.is_free()),
        "no slot may stay busy after the round"
    );
}

#[test]
fn timeout_cancellation_frees_each_slot_exactly_once_on_both_backends() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();

    // Engine: pick a deadline half the longest natural duration so the race
    // (cancel exactly at deadline vs natural completion) actually occurs.
    let mut baseline = ExecutionEngine::new(profile.clone(), &w, 0);
    let natural = session_round(&mut FifoScheduler::new(), &w, &mut baseline, 0);
    let timeout = natural
        .records
        .iter()
        .map(|r| r.duration())
        .fold(0.0, f64::max)
        / 2.0;
    let mut engine = ExecutionEngine::new(profile, &w, 0);
    assert_timeout_frees_each_slot_exactly_once(&mut engine, &w, timeout);

    let (model, embs, avg) = simulator_parts(&w);
    let mut baseline = LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6);
    let natural = session_round(&mut FifoScheduler::new(), &w, &mut baseline, 0);
    let timeout = natural
        .records
        .iter()
        .map(|r| r.duration())
        .fold(0.0, f64::max)
        / 2.0;
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg, 6);
    assert_timeout_frees_each_slot_exactly_once(&mut sim, &w, timeout);
}

#[test]
fn simulator_timeouts_respect_predicted_completions() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let (model, embs, avg) = simulator_parts(&w);

    // Baseline: natural (predicted) completions, no timeout.
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6);
    let natural = session_round(&mut FifoScheduler::new(), &w, &mut sim, 0);
    let max_natural = natural
        .records
        .iter()
        .map(|r| r.duration())
        .fold(0.0, f64::max);

    // A timeout far beyond every predicted duration must not change the
    // episode: the simulator still completes queries via its predictions
    // instead of cancelling everything at the deadline.
    let generous = max_natural * 100.0;
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg.clone(), 6);
    let log = ScheduleSession::builder(&w)
        .round(0)
        .query_timeout(generous)
        .build(&mut sim)
        .run(&mut FifoScheduler::new());
    assert_eq!(natural.to_json(), log.to_json());

    // A tight timeout clips at the deadline, and every duration respects it.
    let tight = max_natural / 2.0;
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg, 6);
    let log = ScheduleSession::builder(&w)
        .round(0)
        .query_timeout(tight)
        .build(&mut sim)
        .run(&mut FifoScheduler::new());
    assert_eq!(log.len(), w.len());
    let max_timed = log.records.iter().map(|r| r.duration()).fold(0.0, f64::max);
    assert!(
        max_timed <= tight + 1e-6,
        "simulator duration {max_timed} overshot the {tight}s timeout"
    );
}

#[test]
fn random_policy_is_reproducible_across_backends_per_seed() {
    // Same seed, same backend type => identical logs; the session introduces
    // no hidden nondeterminism.
    let w = generate(&WorkloadSpec::new(Benchmark::TpcDs, 1.0, 1));
    let profile = DbmsProfile::dbms_y();
    let run = |seed: u64| {
        let mut engine = ExecutionEngine::new(profile.clone(), &w, seed);
        session_round(&mut RandomScheduler::new(seed), &w, &mut engine, seed).to_json()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn query_ids_stay_in_range_for_both_backends() {
    let w = generate(&WorkloadSpec::new(Benchmark::TpcH, 1.0, 1));
    let profile = DbmsProfile::dbms_x();
    let mut engine = ExecutionEngine::new(profile.clone(), &w, 2);
    let log = session_round(&mut FifoScheduler::new(), &w, &mut engine, 2);
    for r in &log.records {
        assert!(r.query.0 < w.len());
        assert!(r.connection < profile.connections);
    }

    let (model, embs, avg) = simulator_parts(&w);
    let mut sim = LearnedSimulator::new(&model, &w, &embs, avg, 5);
    let log = session_round(&mut FifoScheduler::new(), &w, &mut sim, 2);
    for r in &log.records {
        assert!(r.query.0 < w.len());
        assert!(r.connection < 5, "simulator connection out of range");
    }
}
